//! # pa-kernel — the simulated SMP-node operating system
//!
//! Policy-level model of an AIX-like kernel on a 16-way SMP node, built
//! for the PACE reproduction of Jones et al., SC'03. It implements the
//! *mechanisms* the paper modifies:
//!
//! * priority dispatching with per-CPU and global run queues
//!   ([`ReadyQueue`], [`DaemonQueuePolicy`]);
//! * periodic timer ticks with staggered or simultaneous phasing and the
//!   "big tick" divisor ([`SchedOptions`], [`TickAlign`]);
//! * delayed cross-CPU preemption, the "real time scheduling" IPI option,
//!   and the paper's improved variant with reverse preemption and
//!   concurrent IPIs ([`PreemptMode`]);
//! * tick-batched timer callouts (daemon wakeups);
//! * busy-poll and blocking receives with MPI-envelope matching
//!   ([`Mailbox`]);
//! * an I/O request path serviced by a daemon thread ([`IoServiceModel`]);
//! * device-interrupt noise sources ([`InterruptSourceSpec`]);
//! * per-node clocks with switch-clock synchronization ([`ClockModel`]).
//!
//! Thread behaviour is supplied by [`Program`] implementations; see
//! `pa-noise` for the daemon zoo and `pa-mpi` for MPI ranks.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clock;
pub mod dispatch;
pub mod interrupts;
pub mod io;
pub mod kernel;
pub mod msg;
pub mod options;
pub mod program;
pub mod runq;
pub mod solo;
pub mod types;

pub use clock::ClockModel;
pub use dispatch::{make_dispatcher, prio_to_weight, Dispatcher};
pub use interrupts::InterruptSourceSpec;
pub use io::{IoRequest, IoServiceModel};
pub use kernel::{
    prio_band, Effects, Kernel, KernelEvent, KernelSnapshot, KernelStats, SegCancel, ThreadAccount,
    ThreadSpec, UsageRow, RUNQ_BANDS,
};
pub use msg::{Endpoint, Mailbox, Message, SrcSel, TagSel};
pub use options::{CostModel, SchedOptions};
pub use program::{Action, PeriodicLoop, Program, Script, StepCtx, WaitMode};
pub use runq::{DispatchKey, ReadyQueue};
pub use solo::{seg_slots_of, SoloRunner};
pub use types::TickAlign;
pub use types::{
    CpuId, DaemonQueuePolicy, DispatcherKind, PreemptMode, Prio, QueueDiscipline, ThreadState, Tid,
};

#[cfg(test)]
mod tests {
    use super::*;
    use pa_simkit::{SimDur, SimRng, SimTime};
    use pa_trace::{HookId, HookMask, ThreadClass};

    fn mk_kernel(ncpus: u8, opts: SchedOptions) -> Kernel {
        let mut k = Kernel::new(
            0,
            ncpus,
            opts,
            ClockModel::synced(),
            SimRng::from_seed(7),
            1 << 16,
        );
        k.trace_mut().set_mask(HookMask::ALL);
        k
    }

    fn app_spec(name: &str, cpu: u8) -> ThreadSpec {
        ThreadSpec::new(name, ThreadClass::App, Prio::USER).on_cpu(CpuId(cpu))
    }

    #[test]
    fn single_compute_thread_runs_and_exits() {
        let mut k = mk_kernel(1, SchedOptions::vanilla());
        let tid = k.spawn(
            app_spec("app", 0),
            Box::new(Script::new(vec![Action::Compute(SimDur::from_millis(3))])),
        );
        let mut r = SoloRunner::new(k);
        r.boot();
        let end = r.run_until_apps_done(SimTime::from_secs(1));
        assert_eq!(r.kernel.app_alive(), 0);
        assert_eq!(r.kernel.thread_state(tid), ThreadState::Exited);
        // 3ms of demand plus ctx switch plus one 10ms-tick steal at most.
        assert!(end >= SimTime::from_millis(3));
        assert!(end < SimTime::from_millis(4), "took {end}");
        // CPU time should be demand + overheads, close to wall time here.
        let cpu_t = r.kernel.thread_cpu_time(tid);
        assert!(cpu_t >= SimDur::from_millis(3));
    }

    #[test]
    fn tick_cost_extends_segments() {
        // A 100ms compute on a vanilla kernel crosses ~10 ticks; each
        // steals tick_cost, so wall time exceeds demand accordingly.
        let mut k = mk_kernel(1, SchedOptions::vanilla());
        k.spawn(
            app_spec("app", 0),
            Box::new(Script::new(vec![Action::Compute(SimDur::from_millis(100))])),
        );
        let mut r = SoloRunner::new(k);
        r.boot();
        let end = r.run_until_apps_done(SimTime::from_secs(1));
        let min_expected = SimTime::from_nanos(100_000_000 + 9 * 5_000);
        assert!(end >= min_expected, "no tick stealing observed: {end}");
    }

    #[test]
    fn big_tick_reduces_tick_overhead() {
        let run = |opts: SchedOptions| {
            let mut k = mk_kernel(1, opts);
            k.spawn(
                app_spec("app", 0),
                Box::new(Script::new(vec![Action::Compute(SimDur::from_secs(2))])),
            );
            let mut r = SoloRunner::new(k);
            r.boot();
            r.run_until_apps_done(SimTime::from_secs(10)).nanos()
        };
        let vanilla = run(SchedOptions::vanilla());
        let mut big = SchedOptions::vanilla();
        big.big_tick = 25;
        let big_t = run(big);
        assert!(
            big_t < vanilla,
            "big tick should reduce overhead: {big_t} vs {vanilla}"
        );
    }

    #[test]
    fn better_priority_preempts_at_tick_lazy() {
        // App running; daemon readied by callout mid-tick-period. Under
        // Lazy preemption the daemon waits for the tick, then preempts.
        let mut k = mk_kernel(1, SchedOptions::vanilla());
        let app = k.spawn(
            app_spec("app", 0),
            Box::new(Script::new(vec![Action::Compute(SimDur::from_millis(50))])),
        );
        let daemon = k.spawn(
            ThreadSpec::new("syncd", ThreadClass::Daemon, Prio::DAEMON_OBSERVED).on_cpu(CpuId(0)),
            Box::new(Script::new(vec![
                Action::SleepUntil(SimTime::from_millis(12)),
                Action::Compute(SimDur::from_millis(2)),
            ])),
        );
        let mut r = SoloRunner::new(k);
        r.boot();
        r.run_until(SimTime::from_millis(25));
        // At 25ms: daemon woke at the 20ms tick (12ms rounded up to tick
        // processing), preempted the app immediately (same-tick resched),
        // ran 2ms, exited. The app should be running again.
        assert_eq!(r.kernel.thread_state(daemon), ThreadState::Exited);
        assert_eq!(r.kernel.running_on(CpuId(0)), Some(app));
        let daemon_cpu = r.kernel.thread_cpu_time(daemon);
        assert!(daemon_cpu >= SimDur::from_millis(2));
    }

    #[test]
    fn message_wake_is_interrupt_driven() {
        // A blocked daemon woken by a message mid-tick-period dispatches
        // before the next tick when it beats the running thread — message
        // wakeups do not ride the callout queue.
        let mut k = mk_kernel(1, SchedOptions::vanilla());
        let sender = k.spawn(
            app_spec("sender", 0),
            Box::new(Script::new(vec![
                Action::Compute(SimDur::from_millis(3)),
                Action::Send(Message {
                    src: Endpoint {
                        node: 0,
                        tid: Tid(0),
                    },
                    dst: Endpoint {
                        node: 0,
                        tid: Tid(1),
                    },
                    tag: 1,
                    bytes: 8,
                    sent_at: SimTime::ZERO,
                    payload: 0,
                }),
                Action::Compute(SimDur::from_millis(40)),
            ])),
        );
        let daemon = k.spawn(
            ThreadSpec::new("waker", ThreadClass::Daemon, Prio::DAEMON_OBSERVED).on_cpu(CpuId(0)),
            Box::new(Script::new(vec![
                Action::Recv {
                    tag: TagSel::Exact(1),
                    src: SrcSel::Any,
                    wait: WaitMode::Block,
                },
                Action::Compute(SimDur::from_micros(100)),
            ])),
        );
        let _ = sender;
        let mut r = SoloRunner::new(k);
        r.boot();
        r.run_until(SimTime::from_millis(30));
        let first_dispatch = r
            .kernel
            .trace()
            .events()
            .filter(|e| e.hook == HookId::Dispatch && e.tid == daemon.0)
            .map(|e| e.time)
            .nth(1) // 0th is the initial boot dispatch into Recv
            .expect("daemon redispatched after wake");
        // Wake happened ~3ms (send), lazy preemption notices at the 10ms
        // tick at the latest; critically NOT at 20ms+ (i.e. it did not
        // miss the first tick).
        assert!(
            first_dispatch <= SimTime::from_millis(10),
            "daemon dispatched at {first_dispatch}"
        );
    }

    #[test]
    fn reverse_preemption_needs_improved_mode() {
        // App A (USER) runs; app B (USER) waits in queue. A's priority is
        // lowered to UNFAVORED by a cosched-like daemon. Improved mode
        // IPIs within ~300µs; plain RtIpi waits for the next tick.
        let run = |preempt: PreemptMode| {
            let mut opts = SchedOptions::vanilla();
            opts.preempt = preempt;
            let mut k = mk_kernel(1, opts);
            let a = k.spawn(
                app_spec("a", 0),
                Box::new(Script::new(vec![Action::Compute(SimDur::from_millis(50))])),
            );
            let b = k.spawn(
                app_spec("b", 0),
                Box::new(Script::new(vec![Action::Compute(SimDur::from_millis(1))])),
            );
            // A cosched-style actor that lowers A's priority at ~2ms.
            // SleepUntil wakes at the tick *after* 2ms: with vanilla 10ms
            // staggered ticks on 1 CPU that is the 10ms tick, so use a
            // direct set_priority call instead, injected via a Script
            // running at COSCHED priority woken by message... simplest:
            // drive the kernel directly below.
            let mut r = SoloRunner::new(k);
            r.boot();
            r.run_until(SimTime::from_millis(2));
            let mut fx = Effects::new();
            r.kernel
                .set_priority(a, Prio::UNFAVORED, SimTime::from_millis(2), &mut fx);
            // Feed any scheduled IPIs through the kernel at their time.
            let mut pending = fx.schedule;
            pending.sort_by_key(|(t, _)| *t);
            for (t, ev) in pending {
                r.run_until(t);
                let mut fx2 = Effects::new();
                r.kernel.handle(t, ev, &mut fx2);
                for (t2, ev2) in fx2.schedule {
                    // Only SegEnd rescheduling for the preempted thread can
                    // appear; replay it inline as well.
                    r.run_until(t2);
                    let mut fx3 = Effects::new();
                    r.kernel.handle(t2, ev2, &mut fx3);
                    assert!(fx3.schedule.iter().all(|(t3, _)| *t3 > t2));
                }
            }
            r.run_until(SimTime::from_millis(30));
            let first = r
                .kernel
                .trace()
                .events()
                .find(|e| e.hook == HookId::Dispatch && e.tid == b.0)
                .map(|e| e.time);
            first
        };
        let improved = run(PreemptMode::RtIpiImproved).expect("b ran (improved)");
        let plain = run(PreemptMode::RtIpi).expect("b ran (plain)");
        assert!(
            improved < SimTime::from_millis(3),
            "improved reverse preemption at {improved}"
        );
        assert!(
            plain >= SimTime::from_millis(10),
            "plain waits for tick, got {plain}"
        );
    }

    #[test]
    fn idle_cpu_absorbs_daemon_15_of_16_style() {
        // Two CPUs, one app pinned to CPU0, CPU1 idle. A daemon homed on
        // CPU0 should be stolen by idle CPU1 and never disturb the app.
        let mut k = mk_kernel(2, SchedOptions::vanilla());
        let app = k.spawn(
            app_spec("app", 0),
            Box::new(Script::new(vec![Action::Compute(SimDur::from_millis(30))])),
        );
        let daemon = k.spawn(
            ThreadSpec::new("syncd", ThreadClass::Daemon, Prio::DAEMON_OBSERVED).on_cpu(CpuId(0)),
            Box::new(Script::new(vec![
                Action::SleepUntil(SimTime::from_millis(5)),
                Action::Compute(SimDur::from_millis(3)),
            ])),
        );
        let mut r = SoloRunner::new(k);
        r.boot();
        r.run_until(SimTime::from_millis(20));
        assert_eq!(r.kernel.thread_state(daemon), ThreadState::Exited);
        // The app must never have been undispatched from CPU0.
        let app_undispatches = r
            .kernel
            .trace()
            .events()
            .filter(|e| e.hook == HookId::Undispatch && e.tid == app.0)
            .count();
        assert_eq!(app_undispatches, 0, "app was disturbed");
        // And the daemon's burst (its post-sleep dispatch) ran on CPU1.
        // (Its time-zero boot dispatch, where it immediately sleeps, may
        // legitimately happen anywhere.)
        let daemon_burst_cpu = r
            .kernel
            .trace()
            .events()
            .filter(|e| e.hook == HookId::Dispatch && e.tid == daemon.0)
            .filter(|e| e.time >= SimTime::from_millis(1))
            .map(|e| e.cpu)
            .next()
            .expect("daemon burst dispatched");
        assert_eq!(daemon_burst_cpu, 1);
    }

    #[test]
    fn global_queue_spreads_daemons() {
        // Two daemons readied simultaneously on a 2-CPU node with both
        // CPUs busy: under the Global policy they preempt *different*
        // CPUs; under PerCpu with the same home they serialize.
        let run = |policy: DaemonQueuePolicy| {
            let mut opts = SchedOptions::vanilla();
            opts.daemon_queue = policy;
            opts.preempt = PreemptMode::RtIpiImproved;
            let mut k = mk_kernel(2, opts);
            for c in 0..2 {
                k.spawn(
                    app_spec(&format!("app{c}"), c),
                    Box::new(Script::new(vec![Action::Compute(SimDur::from_millis(100))])),
                );
            }
            let mut daemons = Vec::new();
            for d in 0..2 {
                daemons.push(
                    k.spawn(
                        ThreadSpec::new(
                            format!("d{d}"),
                            ThreadClass::Daemon,
                            Prio::DAEMON_OBSERVED,
                        )
                        .on_cpu(CpuId(0)),
                        Box::new(Script::new(vec![
                            Action::SleepUntil(SimTime::from_millis(15)),
                            Action::Compute(SimDur::from_millis(4)),
                        ])),
                    ),
                );
            }
            let mut r = SoloRunner::new(k);
            r.boot();
            r.run_until(SimTime::from_millis(60));
            // When did the second daemon finish?
            daemons
                .iter()
                .map(|&d| {
                    r.kernel
                        .trace()
                        .events()
                        .filter(|e| e.hook == HookId::Undispatch && e.tid == d.0)
                        .map(|e| e.time)
                        .last()
                        .expect("daemon ran")
                })
                .max()
                .unwrap()
        };
        let percpu = run(DaemonQueuePolicy::PerCpu);
        let global = run(DaemonQueuePolicy::Global);
        assert!(
            global < percpu,
            "global queue should overlap daemons: {global} vs {percpu}"
        );
    }

    #[test]
    fn poll_recv_completes_on_delivery() {
        let mut k = mk_kernel(1, SchedOptions::vanilla());
        let _receiver = k.spawn(
            app_spec("recv", 0),
            Box::new(Script::new(vec![Action::Recv {
                tag: TagSel::Exact(7),
                src: SrcSel::Any,
                wait: WaitMode::Poll,
            }])),
        );
        let mut r = SoloRunner::new(k);
        r.boot();
        r.run_until(SimTime::from_millis(1));
        let mut fx = Effects::new();
        r.kernel.deliver_now(
            Message {
                src: Endpoint {
                    node: 0,
                    tid: Tid(50),
                },
                dst: Endpoint {
                    node: 0,
                    tid: Tid(0),
                },
                tag: 7,
                bytes: 8,
                sent_at: SimTime::from_millis(1),
                payload: 0,
            },
            SimTime::from_millis(1),
            &mut fx,
        );
        // PollNotice scheduled shortly after delivery.
        assert!(fx
            .schedule
            .iter()
            .any(|(t, e)| matches!(e, KernelEvent::PollNotice { .. })
                && *t <= SimTime::from_millis(1) + SimDur::from_micros(2)));
    }

    #[test]
    fn blocked_recv_wakes_on_delivery() {
        let mut k = mk_kernel(1, SchedOptions::vanilla());
        let receiver = k.spawn(
            app_spec("recv", 0),
            Box::new(Script::new(vec![
                Action::Recv {
                    tag: TagSel::Exact(9),
                    src: SrcSel::Any,
                    wait: WaitMode::Block,
                },
                Action::Compute(SimDur::from_micros(100)),
            ])),
        );
        let sender = k.spawn(
            app_spec("send", 0),
            Box::new(Script::new(vec![
                Action::Compute(SimDur::from_micros(500)),
                Action::Send(Message {
                    src: Endpoint {
                        node: 0,
                        tid: Tid(1),
                    },
                    dst: Endpoint {
                        node: 0,
                        tid: Tid(0),
                    },
                    tag: 9,
                    bytes: 8,
                    sent_at: SimTime::ZERO,
                    payload: 0,
                }),
            ])),
        );
        let mut r = SoloRunner::new(k);
        r.boot();
        r.run_until_apps_done(SimTime::from_secs(1));
        assert_eq!(r.kernel.thread_state(receiver), ThreadState::Exited);
        assert_eq!(r.kernel.thread_state(sender), ThreadState::Exited);
    }

    #[test]
    fn io_daemon_services_requests() {
        // An app submits I/O; the designated daemon must run to complete
        // it; then the app resumes and exits.
        struct IoDaemon;
        impl Program for IoDaemon {
            fn step(&mut self, ctx: &mut StepCtx<'_>) -> Action {
                match ctx.take_io_request() {
                    Some(req) => Action::IoComplete(req),
                    None => Action::IoIdle,
                }
            }
        }
        let mut k = mk_kernel(2, SchedOptions::vanilla());
        let app = k.spawn(
            app_spec("app", 0),
            Box::new(Script::new(vec![
                Action::IoSubmit { bytes: 1 << 20 },
                Action::Compute(SimDur::from_micros(50)),
            ])),
        );
        let d = k.spawn(
            ThreadSpec::new("mmfsd", ThreadClass::Daemon, Prio::MMFSD).on_cpu(CpuId(1)),
            Box::new(IoDaemon),
        );
        k.set_io_daemon(d);
        let mut r = SoloRunner::new(k);
        r.boot();
        r.run_until_apps_done(SimTime::from_secs(1));
        assert_eq!(r.kernel.thread_state(app), ThreadState::Exited);
        // Both IoStart and IoDone must be in the trace.
        let hooks: Vec<HookId> = r
            .kernel
            .trace()
            .events()
            .map(|e| e.hook)
            .filter(|h| matches!(h, HookId::IoStart | HookId::IoDone))
            .collect();
        assert_eq!(hooks, vec![HookId::IoStart, HookId::IoDone]);
    }

    #[test]
    fn timeslice_round_robins_equal_priority() {
        // Two equal-priority compute-bound apps pinned to one CPU must
        // alternate at timeslice boundaries rather than run to completion.
        let mut k = mk_kernel(1, SchedOptions::vanilla());
        let a = k.spawn(
            app_spec("a", 0),
            Box::new(Script::new(vec![Action::Compute(SimDur::from_millis(30))])),
        );
        let b = k.spawn(
            app_spec("b", 0),
            Box::new(Script::new(vec![Action::Compute(SimDur::from_millis(30))])),
        );
        let mut r = SoloRunner::new(k);
        r.boot();
        r.run_until(SimTime::from_millis(25));
        // Both should have accumulated CPU time by 25ms.
        assert!(r.kernel.thread_cpu_time(a) > SimDur::from_millis(5));
        assert!(r.kernel.thread_cpu_time(b) > SimDur::from_millis(5));
    }

    #[test]
    fn device_interrupts_stretch_compute() {
        let mut opts = SchedOptions::vanilla();
        // Keep ticks from polluting the measurement.
        opts.costs.tick_cost = SimDur::ZERO;
        let mut k = mk_kernel(1, opts);
        k.add_interrupt_source(InterruptSourceSpec::new(
            "caddpin",
            SimDur::from_millis(2),
            SimDur::from_micros(50),
            SimDur::from_micros(50),
        ));
        k.spawn(
            app_spec("app", 0),
            Box::new(Script::new(vec![Action::Compute(SimDur::from_millis(100))])),
        );
        let mut r = SoloRunner::new(k);
        r.boot();
        let end = r.run_until_apps_done(SimTime::from_secs(1));
        // ~50 interrupts × 50µs ≈ 2.5ms extra.
        assert!(
            end > SimTime::from_millis(101),
            "interrupt stealing not observed: {end}"
        );
        assert!(end < SimTime::from_millis(110));
    }

    #[test]
    fn set_priority_requeues_ready_thread() {
        let mut k = mk_kernel(1, SchedOptions::vanilla());
        let _runner = k.spawn(
            app_spec("runner", 0),
            Box::new(Script::new(vec![Action::Compute(SimDur::from_millis(100))])),
        );
        let waiter = k.spawn(
            app_spec("waiter", 0),
            Box::new(Script::new(vec![Action::Compute(SimDur::from_millis(1))])),
        );
        let mut r = SoloRunner::new(k);
        r.boot();
        r.run_until(SimTime::from_millis(1));
        assert_eq!(r.kernel.thread_prio(waiter), Prio::USER);
        let mut fx = Effects::new();
        r.kernel
            .set_priority(waiter, Prio::FAVORED, SimTime::from_millis(1), &mut fx);
        assert_eq!(r.kernel.thread_prio(waiter), Prio::FAVORED);
        // Lazy mode: the next tick (10ms) performs the switch; the waiter
        // then runs its 1ms of work and exits.
        r.run_until(SimTime::from_millis(12));
        assert_eq!(r.kernel.thread_state(waiter), ThreadState::Exited);
        let waiter_dispatch = r
            .kernel
            .trace()
            .events()
            .find(|e| e.hook == HookId::Dispatch && e.tid == waiter.0)
            .map(|e| e.time)
            .expect("waiter dispatched");
        assert_eq!(waiter_dispatch, SimTime::from_millis(10));
    }

    #[test]
    fn usage_report_accounts_daemons() {
        let mut k = mk_kernel(1, SchedOptions::vanilla());
        k.spawn(
            ThreadSpec::new("syncd", ThreadClass::Daemon, Prio::DAEMON_OBSERVED).on_cpu(CpuId(0)),
            Box::new(PeriodicLoop::new(
                SimDur::from_millis(100),
                SimDur::from_millis(1),
                SimDur::ZERO,
            )),
        );
        let mut r = SoloRunner::new(k);
        r.boot();
        r.run_until(SimTime::from_secs(2));
        let rows = r.kernel.usage_report();
        let syncd = rows.iter().find(|u| u.name == "syncd").expect("syncd row");
        // ~20 bursts of 1ms ≈ 20ms (+ctx overhead).
        assert!(
            syncd.cpu_time >= SimDur::from_millis(15) && syncd.cpu_time <= SimDur::from_millis(30),
            "syncd cpu time {}",
            syncd.cpu_time
        );
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        use serde::{Deserialize, Serialize};

        // A moderately rich node: two CPUs, two compute/sleep apps, a
        // periodic daemon, and a device-interrupt source (so the RNG
        // stream position matters).
        let assemble = || {
            let mut k = mk_kernel(2, SchedOptions::vanilla());
            k.add_interrupt_source(InterruptSourceSpec::new(
                "nic",
                SimDur::from_millis(3),
                SimDur::from_micros(20),
                SimDur::from_micros(60),
            ));
            k.spawn(
                app_spec("app0", 0),
                Box::new(Script::new(vec![
                    Action::Compute(SimDur::from_millis(40)),
                    Action::SleepUntil(SimTime::from_millis(70)),
                    Action::Compute(SimDur::from_millis(25)),
                ])),
            );
            k.spawn(
                app_spec("app1", 1),
                Box::new(Script::new(vec![
                    Action::Compute(SimDur::from_millis(30)),
                    Action::Compute(SimDur::from_millis(30)),
                ])),
            );
            k.spawn(
                ThreadSpec::new("syncd", ThreadClass::Daemon, Prio::DAEMON_OBSERVED)
                    .on_cpu(CpuId(0)),
                Box::new(PeriodicLoop::new(
                    SimDur::from_millis(10),
                    SimDur::from_micros(500),
                    SimDur::ZERO,
                )),
            );
            let mut r = SoloRunner::new(k);
            r.boot();
            r
        };
        let horizon = SimTime::from_millis(120);

        // Uninterrupted reference run.
        let mut a = assemble();
        a.run_until(horizon);
        let a_trace: Vec<_> = a.kernel.trace().events().copied().collect();

        // Checkpointed run: stop mid-flight, snapshot, restore into a
        // freshly assembled node via a JSON round trip, and continue.
        let mut b = assemble();
        b.run_until(SimTime::from_millis(55));
        let snap = b.kernel.snapshot();
        let json = snap.to_value().to_json_string();
        let q_events: Vec<(SimTime, u64, KernelEvent)> = b
            .queue()
            .live_entries()
            .into_iter()
            .map(|(t, id, ev)| (t, id, ev.clone()))
            .collect();
        let (q_now, q_next, q_stats) =
            (b.queue().now(), b.queue().next_id_raw(), b.queue().stats());

        let mut c = assemble();
        let back = KernelSnapshot::from_value(&serde_json::parse(&json).unwrap()).unwrap();
        c.kernel.restore(&back).unwrap();
        c.restore_queue(
            pa_simkit::EventQueue::from_parts(q_now, q_next, q_stats, q_events).unwrap(),
            b.events_processed(),
        );
        c.run_until(horizon);

        let c_trace: Vec<_> = c.kernel.trace().events().copied().collect();
        assert_eq!(c_trace, a_trace, "trace diverged after restore");
        assert_eq!(c.kernel.stats(), a.kernel.stats());
        assert_eq!(c.events_processed(), a.events_processed());
        assert_eq!(c.kernel.usage_report(), a.kernel.usage_report());
    }

    #[test]
    fn restore_rejects_mismatched_assembly() {
        let mut a = SoloRunner::new(mk_kernel(1, SchedOptions::vanilla()));
        a.kernel.spawn(
            app_spec("app", 0),
            Box::new(Script::new(vec![Action::Compute(SimDur::from_millis(5))])),
        );
        a.boot();
        a.run_until(SimTime::from_millis(1));
        let snap = a.kernel.snapshot();

        // Different thread name.
        let mut b = SoloRunner::new(mk_kernel(1, SchedOptions::vanilla()));
        b.kernel.spawn(
            app_spec("other", 0),
            Box::new(Script::new(vec![Action::Compute(SimDur::from_millis(5))])),
        );
        b.boot();
        assert!(b.kernel.restore(&snap).is_err());

        // Different CPU count.
        let mut c = SoloRunner::new(mk_kernel(2, SchedOptions::vanilla()));
        c.kernel.spawn(
            app_spec("app", 0),
            Box::new(Script::new(vec![Action::Compute(SimDur::from_millis(5))])),
        );
        c.boot();
        assert!(c.kernel.restore(&snap).is_err());

        // Unbooted kernel.
        let mut d = mk_kernel(1, SchedOptions::vanilla());
        d.spawn(
            app_spec("app", 0),
            Box::new(Script::new(vec![Action::Compute(SimDur::from_millis(5))])),
        );
        assert!(d.restore(&snap).is_err());
    }

    #[test]
    fn cfs_splits_cpu_between_equal_spinners() {
        // Two equal-weight spinners on one CPU under the CFS policy must
        // split the CPU evenly: after any settling window their cpu_time
        // difference stays within one slice plus one tick of lazy notice.
        let mut opts = SchedOptions::vanilla();
        opts.dispatcher = DispatcherKind::Cfs;
        let mut k = mk_kernel(1, opts);
        let a = k.spawn(
            app_spec("a", 0),
            Box::new(Script::new(vec![Action::Compute(SimDur::from_secs(1))])),
        );
        let b = k.spawn(
            app_spec("b", 0),
            Box::new(Script::new(vec![Action::Compute(SimDur::from_secs(1))])),
        );
        let mut r = SoloRunner::new(k);
        r.boot();
        r.run_until(SimTime::from_millis(200));
        let ta = r.kernel.thread_cpu_time(a);
        let tb = r.kernel.thread_cpu_time(b);
        // Each should hold roughly half of the 200ms window.
        assert!(ta >= SimDur::from_millis(80), "a starved: {ta:?}");
        assert!(tb >= SimDur::from_millis(80), "b starved: {tb:?}");
        // Split within one CFS slice (latency/2 = 12ms) + one 10ms tick.
        let diff = if ta > tb { ta - tb } else { tb - ta };
        assert!(diff <= SimDur::from_millis(22), "unfair split: {diff:?}");
    }

    #[test]
    fn fair_policies_do_not_starve_unfavored_threads() {
        // Under AIX priority dispatch a USER spinner starves an UNFAVORED
        // one completely; under the fair policies the nice-to-weight table
        // only *scales* the unfavored thread's share.
        let share = |kind: DispatcherKind| {
            let mut opts = SchedOptions::vanilla();
            opts.dispatcher = kind;
            let mut k = mk_kernel(1, opts);
            k.spawn(
                app_spec("hi", 0),
                Box::new(Script::new(vec![Action::Compute(SimDur::from_secs(1))])),
            );
            let lo = k.spawn(
                ThreadSpec::new("lo", ThreadClass::App, Prio::UNFAVORED).on_cpu(CpuId(0)),
                Box::new(Script::new(vec![Action::Compute(SimDur::from_secs(1))])),
            );
            let mut r = SoloRunner::new(k);
            r.boot();
            r.run_until(SimTime::from_millis(400));
            r.kernel.thread_cpu_time(lo)
        };
        assert_eq!(share(DispatcherKind::Aix), SimDur::ZERO);
        for kind in [DispatcherKind::Cfs, DispatcherKind::Eevdf] {
            let got = share(kind);
            assert!(
                got >= SimDur::from_millis(10),
                "{kind:?} starved the unfavored thread: {got:?}"
            );
        }
    }

    #[test]
    fn fair_policies_run_message_workloads_and_snapshot() {
        // End-to-end smoke: a sender/receiver pair plus a daemon finish
        // under every dispatcher, and a mid-run snapshot restores onto an
        // identically assembled kernel bit for bit.
        for kind in DispatcherKind::ALL {
            let assemble = || {
                let mut opts = SchedOptions::vanilla();
                opts.dispatcher = kind;
                let mut k = mk_kernel(2, opts);
                k.spawn(
                    app_spec("sender", 0),
                    Box::new(Script::new(vec![
                        Action::Compute(SimDur::from_millis(3)),
                        Action::Send(Message {
                            src: Endpoint {
                                node: 0,
                                tid: Tid(0),
                            },
                            dst: Endpoint {
                                node: 0,
                                tid: Tid(1),
                            },
                            tag: 1,
                            bytes: 8,
                            sent_at: SimTime::ZERO,
                            payload: 0,
                        }),
                        Action::Compute(SimDur::from_millis(5)),
                    ])),
                );
                k.spawn(
                    app_spec("receiver", 1),
                    Box::new(Script::new(vec![
                        Action::Recv {
                            tag: TagSel::Exact(1),
                            src: SrcSel::Any,
                            wait: WaitMode::Block,
                        },
                        Action::Compute(SimDur::from_millis(4)),
                    ])),
                );
                k.spawn(
                    ThreadSpec::new("syncd", ThreadClass::Daemon, Prio::DAEMON_OBSERVED),
                    Box::new(Script::new(vec![
                        Action::SleepUntil(SimTime::from_millis(2)),
                        Action::Compute(SimDur::from_millis(1)),
                    ])),
                );
                k
            };
            let horizon = SimTime::from_millis(40);
            let mut a = SoloRunner::new(assemble());
            a.boot();
            a.run_until(horizon);
            assert_eq!(a.kernel.app_alive(), 0, "{kind:?} left apps running");
            let a_trace: Vec<_> = a.kernel.trace().events().copied().collect();

            // Checkpoint mid-run, restore into a fresh assembly, continue,
            // and demand the same history.
            let mut b = SoloRunner::new(assemble());
            b.boot();
            b.run_until(SimTime::from_millis(4));
            let snap = b.kernel.snapshot();
            let q_events: Vec<(SimTime, u64, KernelEvent)> = b
                .queue()
                .live_entries()
                .into_iter()
                .map(|(t, id, ev)| (t, id, ev.clone()))
                .collect();
            let (q_now, q_next, q_stats) =
                (b.queue().now(), b.queue().next_id_raw(), b.queue().stats());

            let mut c = SoloRunner::new(assemble());
            c.boot();
            c.kernel.restore(&snap).unwrap_or_else(|e| {
                panic!("{kind:?} snapshot failed to restore: {e}");
            });
            c.restore_queue(
                pa_simkit::EventQueue::from_parts(q_now, q_next, q_stats, q_events).unwrap(),
                b.events_processed(),
            );
            c.run_until(horizon);
            let c_trace: Vec<_> = c.kernel.trace().events().copied().collect();
            assert_eq!(c_trace, a_trace, "{kind:?} diverged after restore");
        }
    }

    #[test]
    fn exited_threads_drop_messages() {
        let mut k = mk_kernel(1, SchedOptions::vanilla());
        let t = k.spawn(
            app_spec("gone", 0),
            Box::new(Script::new(vec![Action::Compute(SimDur::from_micros(10))])),
        );
        let mut r = SoloRunner::new(k);
        r.boot();
        r.run_until_apps_done(SimTime::from_secs(1));
        let mut fx = Effects::new();
        let now = r.now();
        r.kernel.deliver_now(
            Message {
                src: Endpoint {
                    node: 0,
                    tid: Tid(9),
                },
                dst: Endpoint { node: 0, tid: t },
                tag: 1,
                bytes: 8,
                sent_at: now,
                payload: 0,
            },
            now,
            &mut fx,
        );
        assert!(fx.schedule.is_empty(), "no events for a dead thread");
    }
}
