//! Messages and mailboxes.
//!
//! All inter-thread communication — MPI point-to-point traffic, the MPI
//! library's "control pipe" registrations with the co-scheduler, and the
//! attach/detach requests — travels as [`Message`] values. The kernel
//! matches incoming messages against a thread's posted receive by tag and
//! optional source, like an MPI envelope.

use crate::types::Tid;
use pa_simkit::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A cluster-wide thread address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Endpoint {
    /// Node index in the cluster.
    pub node: u32,
    /// Thread id on that node.
    pub tid: Tid,
}

/// A message in flight or queued in a mailbox.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Sender address.
    pub src: Endpoint,
    /// Destination address.
    pub dst: Endpoint,
    /// Envelope tag (the MPI layer packs collective/phase identifiers here).
    pub tag: u64,
    /// Payload size in bytes (drives fabric serialization time).
    pub bytes: u32,
    /// When the sender handed the message to the fabric.
    pub sent_at: SimTime,
    /// Small payload word (control messages carry pids/commands here).
    pub payload: u64,
}

/// Tag selector for a posted receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TagSel {
    /// Match only this tag.
    Exact(u64),
    /// Match any tag.
    Any,
}

impl TagSel {
    /// Does `tag` satisfy this selector?
    pub fn matches(self, tag: u64) -> bool {
        match self {
            TagSel::Exact(t) => t == tag,
            TagSel::Any => true,
        }
    }
}

/// Source selector for a posted receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SrcSel {
    /// Match only messages from this endpoint.
    Exact(Endpoint),
    /// Match any sender.
    Any,
}

impl SrcSel {
    /// Does `src` satisfy this selector?
    pub fn matches(self, src: Endpoint) -> bool {
        match self {
            SrcSel::Exact(e) => e == src,
            SrcSel::Any => true,
        }
    }
}

/// Tags for the GPFS-style remote I/O protocol.
///
/// A rank performing file I/O sends a request to the serving node's mmfsd
/// (the payload carries the byte count) and blocks on the reply. The
/// request completes only when that daemon wins a CPU *on the server
/// node* — the cross-node dependency behind the §5.3 ALE3D finding that a
/// co-scheduler which starves I/O daemons starves the application.
pub mod ioproto {
    /// Tag kind for I/O traffic (collective = 1, p2p = 2, control = 3).
    pub const KIND_IO: u64 = 4;

    /// Request tag for I/O transaction `token`.
    pub fn req_tag(token: u64) -> u64 {
        (KIND_IO << 60) | (token << 1)
    }

    /// Response tag for I/O transaction `token`.
    pub fn resp_tag(token: u64) -> u64 {
        (KIND_IO << 60) | (token << 1) | 1
    }

    /// Is this a request tag? (None for non-I/O tags.)
    pub fn parse(tag: u64) -> Option<(u64, bool)> {
        if tag >> 60 != KIND_IO {
            return None;
        }
        let body = tag & ((1 << 60) - 1);
        Some((body >> 1, body & 1 == 0))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip() {
            assert_eq!(parse(req_tag(42)), Some((42, true)));
            assert_eq!(parse(resp_tag(42)), Some((42, false)));
            assert_eq!(parse(0), None);
            assert_ne!(req_tag(1), resp_tag(1));
        }
    }
}

/// Per-thread FIFO of delivered-but-unconsumed messages.
///
/// Matching is in arrival order (first match wins), which is what the MPI
/// non-overtaking rule requires for a single (src, tag) stream.
#[derive(Debug, Clone, Default)]
pub struct Mailbox {
    queue: VecDeque<Message>,
}

impl Mailbox {
    /// An empty mailbox.
    pub fn new() -> Mailbox {
        Mailbox::default()
    }

    /// Deliver a message (appends in arrival order).
    pub fn deliver(&mut self, msg: Message) {
        self.queue.push_back(msg);
    }

    /// Remove and return the first message matching the selectors.
    pub fn take_match(&mut self, tag: TagSel, src: SrcSel) -> Option<Message> {
        let idx = self
            .queue
            .iter()
            .position(|m| tag.matches(m.tag) && src.matches(m.src))?;
        self.queue.remove(idx)
    }

    /// Does any queued message match?
    pub fn has_match(&self, tag: TagSel, src: SrcSel) -> bool {
        self.queue
            .iter()
            .any(|m| tag.matches(m.tag) && src.matches(m.src))
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True iff nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Queued messages in arrival order (checkpoint capture).
    pub fn snapshot(&self) -> Vec<Message> {
        self.queue.iter().cloned().collect()
    }

    /// Replace the queue with checkpointed contents, preserving arrival
    /// order (the inverse of [`Mailbox::snapshot`]).
    pub fn restore(&mut self, messages: Vec<Message>) {
        self.queue = messages.into();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(src_tid: u32, tag: u64) -> Message {
        Message {
            src: Endpoint {
                node: 0,
                tid: Tid(src_tid),
            },
            dst: Endpoint {
                node: 0,
                tid: Tid(99),
            },
            tag,
            bytes: 8,
            sent_at: SimTime::ZERO,
            payload: 0,
        }
    }

    #[test]
    fn exact_tag_matching() {
        let mut mb = Mailbox::new();
        mb.deliver(msg(1, 10));
        mb.deliver(msg(1, 20));
        assert!(mb.has_match(TagSel::Exact(20), SrcSel::Any));
        let m = mb.take_match(TagSel::Exact(20), SrcSel::Any).unwrap();
        assert_eq!(m.tag, 20);
        assert_eq!(mb.len(), 1);
        assert!(!mb.has_match(TagSel::Exact(20), SrcSel::Any));
    }

    #[test]
    fn any_matches_in_fifo_order() {
        let mut mb = Mailbox::new();
        mb.deliver(msg(1, 10));
        mb.deliver(msg(2, 20));
        let m = mb.take_match(TagSel::Any, SrcSel::Any).unwrap();
        assert_eq!(m.tag, 10, "FIFO order: earliest arrival first");
    }

    #[test]
    fn source_selector_filters() {
        let mut mb = Mailbox::new();
        mb.deliver(msg(1, 10));
        mb.deliver(msg(2, 10));
        let want = SrcSel::Exact(Endpoint {
            node: 0,
            tid: Tid(2),
        });
        let m = mb.take_match(TagSel::Exact(10), want).unwrap();
        assert_eq!(m.src.tid, Tid(2));
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn no_match_leaves_queue_intact() {
        let mut mb = Mailbox::new();
        mb.deliver(msg(1, 10));
        assert!(mb.take_match(TagSel::Exact(11), SrcSel::Any).is_none());
        assert_eq!(mb.len(), 1);
        assert!(!mb.is_empty());
    }

    #[test]
    fn non_overtaking_same_stream() {
        let mut mb = Mailbox::new();
        mb.deliver(Message {
            payload: 1,
            ..msg(1, 7)
        });
        mb.deliver(Message {
            payload: 2,
            ..msg(1, 7)
        });
        let first = mb.take_match(TagSel::Exact(7), SrcSel::Any).unwrap();
        let second = mb.take_match(TagSel::Exact(7), SrcSel::Any).unwrap();
        assert_eq!((first.payload, second.payload), (1, 2));
    }
}
