//! Per-node clock model.
//!
//! Each node keeps local time = global (switch) time + a constant offset.
//! Before synchronization, AIX clocks on an SP disagree at millisecond
//! scale; the co-scheduler's startup procedure reads the switch adapter's
//! globally synchronized clock register and rewrites the *low-order bits*
//! of the local time-of-day so that nodes agree (§4). Only the low-order
//! portion matters because every alignment decision (tick boundaries,
//! co-scheduler window edges) is modular arithmetic on the clock.

use pa_simkit::{SimDur, SimTime};
use serde::{Deserialize, Serialize};

/// A node's view of time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClockModel {
    /// Local clock minus global (switch) time, in nanoseconds. Kept
    /// non-negative so conversions stay in `u64`; a uniformly random boot
    /// offset models mutually disagreeing clocks just as well as a signed
    /// one because all consumers are modular.
    offset_ns: u64,
}

impl ClockModel {
    /// A perfectly synchronized clock.
    pub fn synced() -> ClockModel {
        ClockModel { offset_ns: 0 }
    }

    /// A clock that is `offset` ahead of global time.
    pub fn with_offset(offset: SimDur) -> ClockModel {
        ClockModel {
            offset_ns: offset.nanos(),
        }
    }

    /// The current offset.
    pub fn offset(&self) -> SimDur {
        SimDur::from_nanos(self.offset_ns)
    }

    /// Convert a global instant to this node's local time.
    pub fn to_local(&self, global: SimTime) -> SimTime {
        SimTime::from_nanos(global.nanos() + self.offset_ns)
    }

    /// Convert a local instant to global time. Saturates at the epoch for
    /// local instants earlier than the boot offset (cannot occur for times
    /// produced by [`ClockModel::to_local`]).
    pub fn to_global(&self, local: SimTime) -> SimTime {
        SimTime::from_nanos(local.nanos().saturating_sub(self.offset_ns))
    }

    /// Re-synchronize the low-order bits of the local clock to the switch
    /// clock, leaving a residual error (the paper's procedure matches the
    /// low-order portions; residual models read/propagation error).
    ///
    /// After this call, local boundaries of any period agree with global
    /// boundaries to within `residual`.
    pub fn sync_to_switch(&mut self, residual: SimDur) {
        self.offset_ns = residual.nanos();
    }

    /// The global instant of the next *local-time* boundary `k·period +
    /// phase` at or after the given global instant. This is how the kernel
    /// schedules tick interrupts: boundaries are defined on the node's own
    /// clock, so unsynchronized nodes place them at different global times.
    pub fn next_local_boundary(
        &self,
        global_now: SimTime,
        period: SimDur,
        phase: SimDur,
    ) -> SimTime {
        let local_now = self.to_local(global_now);
        let local_next = local_now.align_up(period, phase);
        self.to_global(local_next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_conversion() {
        let c = ClockModel::with_offset(SimDur::from_millis(7));
        let g = SimTime::from_secs(3);
        assert_eq!(c.to_global(c.to_local(g)), g);
        assert_eq!(c.to_local(g), SimTime::from_nanos(3_007_000_000));
    }

    #[test]
    fn synced_clock_is_identity() {
        let c = ClockModel::synced();
        let g = SimTime::from_micros(123);
        assert_eq!(c.to_local(g), g);
        assert_eq!(c.to_global(g), g);
        assert_eq!(c.offset(), SimDur::ZERO);
    }

    #[test]
    fn boundary_respects_local_clock() {
        // Node is 3ms ahead: its local 10ms boundaries occur 3ms *early*
        // in global time.
        let c = ClockModel::with_offset(SimDur::from_millis(3));
        let p = SimDur::from_millis(10);
        let next = c.next_local_boundary(SimTime::ZERO, p, SimDur::ZERO);
        // local(0) = 3ms; next local boundary = 10ms; global = 7ms.
        assert_eq!(next, SimTime::from_millis(7));
    }

    #[test]
    fn boundary_on_exact_alignment() {
        let c = ClockModel::synced();
        let p = SimDur::from_millis(10);
        assert_eq!(
            c.next_local_boundary(SimTime::from_millis(20), p, SimDur::ZERO),
            SimTime::from_millis(20)
        );
    }

    #[test]
    fn sync_collapses_offsets() {
        let mut a = ClockModel::with_offset(SimDur::from_millis(9));
        let mut b = ClockModel::with_offset(SimDur::from_micros(1_234));
        a.sync_to_switch(SimDur::from_micros(5));
        b.sync_to_switch(SimDur::from_micros(5));
        let p = SimDur::from_secs(1);
        let t = SimTime::from_millis(12_345);
        assert_eq!(
            a.next_local_boundary(t, p, SimDur::ZERO),
            b.next_local_boundary(t, p, SimDur::ZERO)
        );
    }

    #[test]
    fn unsynced_nodes_disagree_on_boundaries() {
        let a = ClockModel::with_offset(SimDur::from_millis(2));
        let b = ClockModel::with_offset(SimDur::from_millis(8));
        let p = SimDur::from_secs(1);
        let t = SimTime::from_secs(5);
        assert_ne!(
            a.next_local_boundary(t, p, SimDur::ZERO),
            b.next_local_boundary(t, p, SimDur::ZERO)
        );
    }
}
