//! Priority-ordered ready queues.
//!
//! AIX dispatches the numerically lowest priority first; within a priority
//! level, threads run in FIFO order. The node has one [`ReadyQueue`] per
//! CPU plus one global queue (see
//! [`DaemonQueuePolicy`](crate::types::DaemonQueuePolicy)).

use crate::types::{Prio, Tid};
use std::collections::BTreeSet;

/// A ready queue ordered by (priority, arrival sequence).
#[derive(Debug, Default, Clone)]
pub struct ReadyQueue {
    set: BTreeSet<(Prio, u64, Tid)>,
    next_seq: u64,
}

impl ReadyQueue {
    /// An empty queue.
    pub fn new() -> ReadyQueue {
        ReadyQueue::default()
    }

    /// Enqueue `tid` at `prio`.
    ///
    /// # Panics
    /// Panics (debug) if `tid` is already queued — a thread must be in at
    /// most one ready queue.
    pub fn push(&mut self, tid: Tid, prio: Prio) {
        debug_assert!(!self.contains(tid), "thread {tid:?} queued twice");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.set.insert((prio, seq, tid));
    }

    /// The best (most favored) queued priority, if any.
    pub fn best_prio(&self) -> Option<Prio> {
        self.set.iter().next().map(|&(p, _, _)| p)
    }

    /// Peek the thread that would be popped next.
    pub fn peek(&self) -> Option<(Prio, Tid)> {
        self.set.iter().next().map(|&(p, _, t)| (p, t))
    }

    /// Pop the most favored thread.
    pub fn pop(&mut self) -> Option<(Prio, Tid)> {
        let &(p, s, t) = self.set.iter().next()?;
        self.set.remove(&(p, s, t));
        Some((p, t))
    }

    /// Remove a specific thread (used when it is stolen by another CPU or
    /// its priority changes). Returns true if it was present.
    pub fn remove(&mut self, tid: Tid) -> bool {
        if let Some(&entry) = self.set.iter().find(|&&(_, _, t)| t == tid) {
            self.set.remove(&entry);
            true
        } else {
            false
        }
    }

    /// Is `tid` queued here?
    pub fn contains(&self, tid: Tid) -> bool {
        self.set.iter().any(|&(_, _, t)| t == tid)
    }

    /// Re-key a queued thread to a new priority, preserving nothing of its
    /// old position (it re-enters FIFO order at the new level). No-op if
    /// absent. Returns true if re-keyed.
    pub fn requeue(&mut self, tid: Tid, new_prio: Prio) -> bool {
        if self.remove(tid) {
            self.push(tid, new_prio);
            true
        } else {
            false
        }
    }

    /// Number of queued threads.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Iterate queued tids in dispatch order.
    pub fn iter(&self) -> impl Iterator<Item = (Prio, Tid)> + '_ {
        self.set.iter().map(|&(p, _, t)| (p, t))
    }

    /// Full queue contents for a checkpoint: `(prio, arrival seq, tid)` in
    /// dispatch order, plus the arrival-sequence allocator. The raw seqs
    /// are what make FIFO-within-priority survive a restore exactly.
    pub fn snapshot(&self) -> (Vec<(Prio, u64, Tid)>, u64) {
        (self.set.iter().copied().collect(), self.next_seq)
    }

    /// Rebuild a queue from checkpointed parts (the inverse of
    /// [`ReadyQueue::snapshot`]). Errors if a tid appears twice or a seq
    /// is at/above the allocator.
    pub fn from_parts(entries: Vec<(Prio, u64, Tid)>, next_seq: u64) -> Result<Self, String> {
        let mut q = ReadyQueue {
            set: BTreeSet::new(),
            next_seq,
        };
        for (prio, seq, tid) in entries {
            if seq >= next_seq {
                return Err(format!(
                    "ready-queue seq {seq} not below the allocator {next_seq}"
                ));
            }
            if q.contains(tid) {
                return Err(format!("thread {tid:?} queued twice in checkpoint"));
            }
            q.set.insert((prio, seq, tid));
        }
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_best_priority_first() {
        let mut q = ReadyQueue::new();
        q.push(Tid(1), Prio(90));
        q.push(Tid(2), Prio(56));
        q.push(Tid(3), Prio(100));
        assert_eq!(q.best_prio(), Some(Prio(56)));
        assert_eq!(q.pop(), Some((Prio(56), Tid(2))));
        assert_eq!(q.pop(), Some((Prio(90), Tid(1))));
        assert_eq!(q.pop(), Some((Prio(100), Tid(3))));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_within_priority() {
        let mut q = ReadyQueue::new();
        for i in 0..5 {
            q.push(Tid(i), Prio(60));
        }
        for i in 0..5 {
            assert_eq!(q.pop(), Some((Prio(60), Tid(i))));
        }
    }

    #[test]
    fn remove_specific() {
        let mut q = ReadyQueue::new();
        q.push(Tid(1), Prio(60));
        q.push(Tid(2), Prio(60));
        assert!(q.remove(Tid(1)));
        assert!(!q.remove(Tid(1)));
        assert!(!q.contains(Tid(1)));
        assert_eq!(q.pop(), Some((Prio(60), Tid(2))));
    }

    #[test]
    fn requeue_changes_order() {
        let mut q = ReadyQueue::new();
        q.push(Tid(1), Prio(100));
        q.push(Tid(2), Prio(90));
        assert!(q.requeue(Tid(1), Prio(30)));
        assert_eq!(q.pop(), Some((Prio(30), Tid(1))));
        assert!(!q.requeue(Tid(99), Prio(1)), "absent tid is a no-op");
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = ReadyQueue::new();
        q.push(Tid(7), Prio(10));
        assert_eq!(q.peek(), Some((Prio(10), Tid(7))));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn iter_in_dispatch_order() {
        let mut q = ReadyQueue::new();
        q.push(Tid(1), Prio(90));
        q.push(Tid(2), Prio(30));
        q.push(Tid(3), Prio(90));
        let order: Vec<Tid> = q.iter().map(|(_, t)| t).collect();
        assert_eq!(order, vec![Tid(2), Tid(1), Tid(3)]);
    }
}
