//! Dispatch-ordered ready queues.
//!
//! The queue orders threads by an opaque [`DispatchKey`] supplied by the
//! active [`Dispatcher`](crate::dispatch::Dispatcher) policy — the AIX
//! policy keys by priority (lower numeric value = more favored, FIFO
//! within a level), the fair policies by virtual runtime or virtual
//! deadline. The node has one [`ReadyQueue`] per CPU plus one global
//! queue (see [`DaemonQueuePolicy`](crate::types::DaemonQueuePolicy)).
//!
//! Membership operations (`remove`, `contains`, `requeue`) go through a
//! `Tid -> (key, seq)` side index so they cost O(log n) instead of the
//! full-set scan they used to be; the set and the index are kept in
//! lockstep and checked against each other after every mutation in debug
//! builds.

use crate::types::{Prio, Tid};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Opaque dispatch-order key: **lower sorts first** (dispatched sooner).
/// The AIX policy stores the priority value, the CFS policy a clamped
/// virtual runtime in weighted nanoseconds, the EEVDF policy a virtual
/// deadline. Ties break FIFO by arrival sequence.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DispatchKey(pub u64);

impl DispatchKey {
    /// The AIX mapping: the priority value itself (lower = more favored),
    /// so key order reproduces priority dispatch exactly.
    pub fn from_prio(prio: Prio) -> DispatchKey {
        DispatchKey(u64::from(prio.0))
    }
}

/// A ready queue ordered by (dispatch key, arrival sequence).
#[derive(Debug, Default, Clone)]
pub struct ReadyQueue {
    set: BTreeSet<(DispatchKey, u64, Tid)>,
    /// Side index for O(log n) membership operations; always mirrors
    /// `set` exactly.
    index: BTreeMap<Tid, (DispatchKey, u64)>,
    next_seq: u64,
}

impl ReadyQueue {
    /// An empty queue.
    pub fn new() -> ReadyQueue {
        ReadyQueue::default()
    }

    /// Set and index must describe the same membership after every
    /// mutation. O(n), debug builds only; node queues hold at most a few
    /// dozen threads.
    fn debug_check(&self) {
        debug_assert_eq!(
            self.set.len(),
            self.index.len(),
            "ready-queue set/index size desync"
        );
        debug_assert!(
            self.set
                .iter()
                .all(|&(k, s, t)| self.index.get(&t) == Some(&(k, s))),
            "ready-queue set/index entry desync"
        );
    }

    /// Enqueue `tid` at `key`.
    ///
    /// # Panics
    /// Panics (debug) if `tid` is already queued — a thread must be in at
    /// most one ready queue.
    pub fn push(&mut self, tid: Tid, key: DispatchKey) {
        debug_assert!(!self.contains(tid), "thread {tid:?} queued twice");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.set.insert((key, seq, tid));
        self.index.insert(tid, (key, seq));
        self.debug_check();
    }

    /// The best (lowest) queued dispatch key, if any.
    pub fn best_key(&self) -> Option<DispatchKey> {
        self.set.iter().next().map(|&(k, _, _)| k)
    }

    /// Peek the thread that would be popped next.
    pub fn peek(&self) -> Option<(DispatchKey, Tid)> {
        self.set.iter().next().map(|&(k, _, t)| (k, t))
    }

    /// Pop the thread with the lowest key.
    pub fn pop(&mut self) -> Option<(DispatchKey, Tid)> {
        let &(k, s, t) = self.set.iter().next()?;
        self.set.remove(&(k, s, t));
        self.index.remove(&t);
        self.debug_check();
        Some((k, t))
    }

    /// Remove a specific thread (used when it is stolen by another CPU or
    /// its key changes). Returns true if it was present. O(log n) via the
    /// side index.
    pub fn remove(&mut self, tid: Tid) -> bool {
        let Some((k, s)) = self.index.remove(&tid) else {
            return false;
        };
        let removed = self.set.remove(&(k, s, tid));
        debug_assert!(removed, "index pointed at a missing set entry");
        self.debug_check();
        true
    }

    /// Is `tid` queued here? O(log n) via the side index.
    pub fn contains(&self, tid: Tid) -> bool {
        self.index.contains_key(&tid)
    }

    /// Re-key a queued thread, preserving nothing of its old position (it
    /// re-enters FIFO order at the new key): one index-guided remove plus
    /// one insert. No-op if absent. Returns true if re-keyed.
    pub fn requeue(&mut self, tid: Tid, new_key: DispatchKey) -> bool {
        let Some((k, s)) = self.index.remove(&tid) else {
            return false;
        };
        let removed = self.set.remove(&(k, s, tid));
        debug_assert!(removed, "index pointed at a missing set entry");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.set.insert((new_key, seq, tid));
        self.index.insert(tid, (new_key, seq));
        self.debug_check();
        true
    }

    /// Number of queued threads.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Iterate queued tids in dispatch order.
    pub fn iter(&self) -> impl Iterator<Item = (DispatchKey, Tid)> + '_ {
        self.set.iter().map(|&(k, _, t)| (k, t))
    }

    /// Full queue contents for a checkpoint: `(key, arrival seq, tid)` in
    /// dispatch order, plus the arrival-sequence allocator. The raw seqs
    /// are what make FIFO-within-key survive a restore exactly.
    pub fn snapshot(&self) -> (Vec<(DispatchKey, u64, Tid)>, u64) {
        (self.set.iter().copied().collect(), self.next_seq)
    }

    /// Rebuild a queue from checkpointed parts (the inverse of
    /// [`ReadyQueue::snapshot`]). The side index is rederived entry by
    /// entry; a tid appearing twice (which would desync set and index) or
    /// a seq at/above the allocator is rejected.
    pub fn from_parts(
        entries: Vec<(DispatchKey, u64, Tid)>,
        next_seq: u64,
    ) -> Result<Self, String> {
        let mut q = ReadyQueue {
            set: BTreeSet::new(),
            index: BTreeMap::new(),
            next_seq,
        };
        for (key, seq, tid) in entries {
            if seq >= next_seq {
                return Err(format!(
                    "ready-queue seq {seq} not below the allocator {next_seq}"
                ));
            }
            if q.index.insert(tid, (key, seq)).is_some() {
                return Err(format!("thread {tid:?} queued twice in checkpoint"));
            }
            if !q.set.insert((key, seq, tid)) {
                return Err(format!(
                    "duplicate ready-queue entry ({key:?}, {seq}) in checkpoint"
                ));
            }
        }
        q.debug_check();
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(v: u8) -> DispatchKey {
        DispatchKey::from_prio(Prio(v))
    }

    #[test]
    fn pops_best_key_first() {
        let mut q = ReadyQueue::new();
        q.push(Tid(1), key(90));
        q.push(Tid(2), key(56));
        q.push(Tid(3), key(100));
        assert_eq!(q.best_key(), Some(key(56)));
        assert_eq!(q.pop(), Some((key(56), Tid(2))));
        assert_eq!(q.pop(), Some((key(90), Tid(1))));
        assert_eq!(q.pop(), Some((key(100), Tid(3))));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_within_key() {
        let mut q = ReadyQueue::new();
        for i in 0..5 {
            q.push(Tid(i), key(60));
        }
        for i in 0..5 {
            assert_eq!(q.pop(), Some((key(60), Tid(i))));
        }
    }

    #[test]
    fn remove_specific() {
        let mut q = ReadyQueue::new();
        q.push(Tid(1), key(60));
        q.push(Tid(2), key(60));
        assert!(q.remove(Tid(1)));
        assert!(!q.remove(Tid(1)));
        assert!(!q.contains(Tid(1)));
        assert_eq!(q.pop(), Some((key(60), Tid(2))));
    }

    #[test]
    fn requeue_changes_order() {
        let mut q = ReadyQueue::new();
        q.push(Tid(1), key(100));
        q.push(Tid(2), key(90));
        assert!(q.requeue(Tid(1), key(30)));
        assert_eq!(q.pop(), Some((key(30), Tid(1))));
        assert!(!q.requeue(Tid(99), key(1)), "absent tid is a no-op");
    }

    #[test]
    fn requeue_reenters_fifo_order_at_new_key() {
        let mut q = ReadyQueue::new();
        q.push(Tid(1), key(60));
        q.push(Tid(2), key(60));
        // Re-keying Tid(1) to the same level moves it behind Tid(2).
        assert!(q.requeue(Tid(1), key(60)));
        assert_eq!(q.pop(), Some((key(60), Tid(2))));
        assert_eq!(q.pop(), Some((key(60), Tid(1))));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = ReadyQueue::new();
        q.push(Tid(7), key(10));
        assert_eq!(q.peek(), Some((key(10), Tid(7))));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn iter_in_dispatch_order() {
        let mut q = ReadyQueue::new();
        q.push(Tid(1), key(90));
        q.push(Tid(2), key(30));
        q.push(Tid(3), key(90));
        let order: Vec<Tid> = q.iter().map(|(_, t)| t).collect();
        assert_eq!(order, vec![Tid(2), Tid(1), Tid(3)]);
    }

    #[test]
    fn snapshot_round_trips_exactly() {
        let mut q = ReadyQueue::new();
        q.push(Tid(1), key(90));
        q.push(Tid(2), key(60));
        q.remove(Tid(1));
        q.push(Tid(3), key(60));
        q.requeue(Tid(2), key(95));
        let (entries, next_seq) = q.snapshot();
        let back = ReadyQueue::from_parts(entries.clone(), next_seq).unwrap();
        assert_eq!(back.snapshot(), (entries, next_seq));
        // Pop order survives the round trip.
        let mut a = q.clone();
        let mut b = back;
        while let Some(x) = a.pop() {
            assert_eq!(b.pop(), Some(x));
        }
        assert_eq!(b.pop(), None);
    }

    #[test]
    fn from_parts_rejects_desync() {
        // Duplicate tid would desync set and index.
        let dup = vec![(key(60), 0, Tid(1)), (key(90), 1, Tid(1))];
        assert!(ReadyQueue::from_parts(dup, 2).is_err());
        // Seq at/above the allocator would collide with future pushes.
        let high = vec![(key(60), 5, Tid(1))];
        assert!(ReadyQueue::from_parts(high, 5).is_err());
        // A valid set round-trips.
        let ok = vec![(key(60), 0, Tid(1)), (key(60), 1, Tid(2))];
        let q = ReadyQueue::from_parts(ok, 2).unwrap();
        assert_eq!(q.len(), 2);
    }
}
