//! Pluggable dispatcher policies over the shared ready-queue substrate.
//!
//! The kernel's mechanisms — per-CPU and global [`ReadyQueue`]s, tick
//! notice points, IPI preemption, idle stealing — are policy-free: they
//! order threads by an opaque [`DispatchKey`] and consult the active
//! [`Dispatcher`] at each decision point. Three policies ship:
//!
//! * [`DispatcherKind::Aix`] — the paper's 2003 semantics. Key = the
//!   priority value, so strict priority dispatch with FIFO within a
//!   level and a fixed round-robin timeslice. Bit-identical to the
//!   pre-trait kernel.
//! * [`DispatcherKind::Cfs`] — CFS-style weighted fairness. Key = the
//!   thread's virtual runtime (nanoseconds scaled by the Linux
//!   nice-to-weight table), clamped to a monotone per-node floor at
//!   enqueue so sleepers rejoin without a starvation debt; slices target
//!   a sched-latency window split among contenders; wakeup preemption
//!   requires beating the runner by a granularity margin.
//! * [`DispatcherKind::Eevdf`] — simplified EEVDF. Key = the virtual
//!   deadline (eligible virtual runtime plus a weight-scaled request);
//!   earliest virtual deadline dispatched first. Eligibility is
//!   approximated by the same monotone floor clamp rather than a full
//!   lag computation.
//!
//! Every policy is a deterministic function of the event history, so the
//! engine's bit-identical-at-any-`--sim-threads` guarantee holds for all
//! of them: the kernel is single-threaded within its shard and the
//! policy adds no new randomness.
//!
//! Priority still exists under the fair policies — it maps to a weight
//! (nice level) instead of an absolute rank. The co-scheduler's priority
//! boosts therefore still *help* a gang, but no longer give it the
//! near-absolute CPU claim AIX priorities do; that difference is exactly
//! what the fair-vs-AIX sweeps measure.

use crate::runq::DispatchKey;
use crate::types::{DispatcherKind, Prio, Tid};
use pa_simkit::SimDur;
use serde::value::{get, Value};
use serde::{Deserialize, Serialize};

/// CFS sched-latency target: every contender should run once within this
/// window (Linux default ballpark for a small machine).
pub const SCHED_LATENCY: SimDur = SimDur::from_nanos(24_000_000);
/// CFS minimum slice: the latency window never splits below this.
pub const MIN_GRANULARITY: SimDur = SimDur::from_nanos(3_000_000);
/// CFS wakeup preemption margin, in *virtual* (weighted) nanoseconds: a
/// waking thread preempts only if its key beats the runner's by this.
pub const WAKEUP_GRANULARITY_VNS: u64 = 1_000_000;

/// The Linux `sched_prio_to_weight` table: weight for nice -20..=19,
/// ~1.25× per nice step, 1024 at nice 0.
pub const NICE_TO_WEIGHT: [u32; 40] = [
    88761, 71755, 56483, 46273, 36291, // -20 .. -16
    29154, 23254, 18705, 14949, 11916, // -15 .. -11
    9548, 7620, 6100, 4904, 3906, // -10 .. -6
    3121, 2501, 1991, 1586, 1277, // -5 .. -1
    1024, 820, 655, 526, 423, // 0 .. 4
    335, 272, 215, 172, 137, // 5 .. 9
    110, 87, 70, 56, 45, // 10 .. 14
    36, 29, 23, 18, 15, // 15 .. 19
];

/// Map an AIX priority to a CFS weight: priority 60 (AIX "normal") is
/// nice 0, and every 4 priority points are one nice step, clamped to the
/// table. The paper's levels land at sensible niceness: the co-scheduler
/// (20) at nice -10, favored (30) at -7, daemons (56) at -1, user (90)
/// at +7, unfavored (100) at +10.
pub fn prio_to_weight(prio: Prio) -> u64 {
    let nice = ((i32::from(prio.0) - 60) / 4).clamp(-20, 19);
    u64::from(NICE_TO_WEIGHT[(nice + 20) as usize])
}

/// Scale `ran` nanoseconds of real CPU time into virtual (weighted)
/// nanoseconds: `ran * 1024 / weight`, the CFS `calc_delta_fair` shape.
fn to_vns(ran: SimDur, weight: u64) -> u64 {
    ran.nanos().saturating_mul(1024) / weight
}

/// Policy hooks consulted by the kernel at every dispatch decision. One
/// instance per node, owned by the [`Kernel`](crate::Kernel); all state
/// it keeps must round-trip through `snapshot_state`/`restore_state` so
/// checkpointed runs resume bit-identically.
pub trait Dispatcher: Send {
    /// Which policy this is.
    fn kind(&self) -> DispatcherKind;

    /// A thread slot was created (including programless pseudo-slots for
    /// interrupt sources — tids stay dense). Called before the thread's
    /// first enqueue.
    fn on_spawn(&mut self, tid: Tid);

    /// The key under which a now-Ready thread enters a queue. May update
    /// policy state (the fair policies clamp the thread's virtual
    /// runtime to the eligibility floor here).
    fn enqueue_key(&mut self, tid: Tid, prio: Prio) -> DispatchKey;

    /// A thread was popped from a queue for dispatch at `key`. The fair
    /// policies advance their monotone virtual-time floor here.
    fn on_pick(&mut self, tid: Tid, key: DispatchKey);

    /// Charge `ran` of CPU time to `tid` as it leaves a CPU (preemption,
    /// block, exit). Mirrors the kernel's `cpu_time` accounting exactly.
    fn charge(&mut self, tid: Tid, prio: Prio, ran: SimDur);

    /// The *effective* key of a currently running thread, `ran` after
    /// its dispatch: what it would re-enter the queue as right now. Used
    /// to compare the runner against ready candidates.
    fn running_key(&self, tid: Tid, prio: Prio, ran: SimDur) -> DispatchKey;

    /// Should a ready candidate at `cand` displace a runner whose
    /// effective key is `running`? `slice_expired` is the round-robin
    /// boundary signal computed from [`Dispatcher::slice_len`].
    fn should_preempt(&self, cand: DispatchKey, running: DispatchKey, slice_expired: bool) -> bool;

    /// Length of the current timeslice given the configured AIX
    /// `timeslice` and the number of ready contenders visible to the CPU.
    fn slice_len(&self, timeslice: SimDur, contenders: usize) -> SimDur;

    /// Serialize all policy state for a checkpoint.
    fn snapshot_state(&self) -> Value;

    /// Restore policy state captured by [`Dispatcher::snapshot_state`].
    fn restore_state(&mut self, v: &Value) -> Result<(), String>;
}

/// Build the policy selected by `kind`.
pub fn make_dispatcher(kind: DispatcherKind) -> Box<dyn Dispatcher> {
    match kind {
        DispatcherKind::Aix => Box::new(AixDispatcher),
        DispatcherKind::Cfs | DispatcherKind::Eevdf => Box::new(FairDispatcher::new(kind)),
    }
}

/// The 2003 AIX policy: key = priority value, fixed timeslice, strict
/// priority preemption with round-robin at slice expiry. Stateless —
/// everything it needs is the priority the kernel already tracks.
#[derive(Debug, Default, Clone)]
pub struct AixDispatcher;

impl Dispatcher for AixDispatcher {
    fn kind(&self) -> DispatcherKind {
        DispatcherKind::Aix
    }

    fn on_spawn(&mut self, _tid: Tid) {}

    fn enqueue_key(&mut self, _tid: Tid, prio: Prio) -> DispatchKey {
        DispatchKey::from_prio(prio)
    }

    fn on_pick(&mut self, _tid: Tid, _key: DispatchKey) {}

    fn charge(&mut self, _tid: Tid, _prio: Prio, _ran: SimDur) {}

    fn running_key(&self, _tid: Tid, prio: Prio, _ran: SimDur) -> DispatchKey {
        DispatchKey::from_prio(prio)
    }

    fn should_preempt(&self, cand: DispatchKey, running: DispatchKey, slice_expired: bool) -> bool {
        cand < running || (cand == running && slice_expired)
    }

    fn slice_len(&self, timeslice: SimDur, _contenders: usize) -> SimDur {
        timeslice
    }

    fn snapshot_state(&self) -> Value {
        Value::Null
    }

    fn restore_state(&mut self, v: &Value) -> Result<(), String> {
        match v {
            Value::Null => Ok(()),
            other => Err(format!("AIX dispatcher expects no state, got {other:?}")),
        }
    }
}

/// Shared machinery of the CFS and EEVDF policies: per-thread virtual
/// runtime in weighted nanoseconds plus the monotone `min_vrt` floor.
#[derive(Debug, Clone)]
pub struct FairDispatcher {
    kind: DispatcherKind,
    /// Virtual runtime per tid (weighted ns). Indexed by dense tid.
    vrt: Vec<u64>,
    /// Monotone floor of the virtual clock: max vruntime ever picked.
    /// Wakers clamp up to it so a long sleep is not a starvation claim.
    min_vrt: u64,
}

impl FairDispatcher {
    /// A fresh fair policy of the given flavor (`Cfs` or `Eevdf`).
    ///
    /// # Panics
    /// Panics if `kind` is [`DispatcherKind::Aix`].
    pub fn new(kind: DispatcherKind) -> FairDispatcher {
        assert!(
            kind != DispatcherKind::Aix,
            "FairDispatcher models the fair policies, not AIX"
        );
        FairDispatcher {
            kind,
            vrt: Vec::new(),
            min_vrt: 0,
        }
    }

    /// EEVDF's weight-scaled request: the virtual span one sched-latency
    /// of service occupies for a thread of this weight.
    fn request_vns(prio: Prio) -> u64 {
        to_vns(SCHED_LATENCY, prio_to_weight(prio))
    }
}

impl Dispatcher for FairDispatcher {
    fn kind(&self) -> DispatcherKind {
        self.kind
    }

    fn on_spawn(&mut self, tid: Tid) {
        debug_assert_eq!(self.vrt.len(), tid.0 as usize, "non-dense tid spawn");
        // Newcomers start at the floor: no claim on the past.
        self.vrt.push(self.min_vrt);
    }

    fn enqueue_key(&mut self, tid: Tid, prio: Prio) -> DispatchKey {
        let v = &mut self.vrt[tid.0 as usize];
        // Eligibility clamp: sleeping accrues no vruntime, so a long
        // sleeper's vrt may lag the floor arbitrarily; re-entering at the
        // floor grants a wakeup boost without unbounded starvation debt.
        *v = (*v).max(self.min_vrt);
        match self.kind {
            DispatcherKind::Cfs => DispatchKey(*v),
            DispatcherKind::Eevdf => DispatchKey((*v).saturating_add(Self::request_vns(prio))),
            DispatcherKind::Aix => unreachable!("FairDispatcher is never AIX"),
        }
    }

    fn on_pick(&mut self, tid: Tid, _key: DispatchKey) {
        // Lazy monotone floor: advances to the picked thread's vruntime
        // (under both flavors the pick with the smallest key also has the
        // smallest clamped vruntime among equal-weight peers; using the
        // thread's own vrt keeps the floor exact for EEVDF too).
        self.min_vrt = self.min_vrt.max(self.vrt[tid.0 as usize]);
    }

    fn charge(&mut self, tid: Tid, prio: Prio, ran: SimDur) {
        let w = prio_to_weight(prio);
        let v = &mut self.vrt[tid.0 as usize];
        *v = (*v).saturating_add(to_vns(ran, w));
    }

    fn running_key(&self, tid: Tid, prio: Prio, ran: SimDur) -> DispatchKey {
        let w = prio_to_weight(prio);
        let v = self.vrt[tid.0 as usize].saturating_add(to_vns(ran, w));
        match self.kind {
            DispatcherKind::Cfs => DispatchKey(v),
            DispatcherKind::Eevdf => DispatchKey(v.saturating_add(Self::request_vns(prio))),
            DispatcherKind::Aix => unreachable!("FairDispatcher is never AIX"),
        }
    }

    fn should_preempt(&self, cand: DispatchKey, running: DispatchKey, slice_expired: bool) -> bool {
        match self.kind {
            DispatcherKind::Cfs => {
                // Wakeup preemption needs a clear margin; slice expiry
                // yields to anyone at least as deserving.
                running.0.saturating_sub(cand.0) > WAKEUP_GRANULARITY_VNS
                    || (slice_expired && cand <= running)
            }
            DispatcherKind::Eevdf => {
                // Earliest virtual deadline first.
                cand < running || (slice_expired && cand <= running)
            }
            DispatcherKind::Aix => unreachable!("FairDispatcher is never AIX"),
        }
    }

    fn slice_len(&self, _timeslice: SimDur, contenders: usize) -> SimDur {
        // Split the latency target among the runner and its contenders,
        // floored at the minimum granularity.
        let split = SCHED_LATENCY / (contenders as u64 + 1);
        split.max(MIN_GRANULARITY)
    }

    fn snapshot_state(&self) -> Value {
        Value::Map(vec![
            ("vrt".into(), self.vrt.to_value()),
            ("min_vrt".into(), self.min_vrt.to_value()),
        ])
    }

    fn restore_state(&mut self, v: &Value) -> Result<(), String> {
        let map = v
            .as_map()
            .ok_or_else(|| format!("fair dispatcher state must be a map, got {v:?}"))?;
        let vrt: Vec<u64> = get(map, "vrt")
            .ok_or_else(|| "fair dispatcher state missing 'vrt'".to_string())
            .and_then(|x| Vec::<u64>::from_value(x).map_err(|e| e.to_string()))?;
        if vrt.len() != self.vrt.len() {
            return Err(format!(
                "fair dispatcher state has {} threads, node has {}",
                vrt.len(),
                self.vrt.len()
            ));
        }
        let min_vrt = get(map, "min_vrt")
            .ok_or_else(|| "fair dispatcher state missing 'min_vrt'".to_string())
            .and_then(|x| u64::from_value(x).map_err(|e| e.to_string()))?;
        self.vrt = vrt;
        self.min_vrt = min_vrt;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_table_matches_linux_anchors() {
        assert_eq!(prio_to_weight(Prio::NORMAL), 1024); // nice 0
        assert_eq!(prio_to_weight(Prio(56)), 1277); // nice -1
        assert_eq!(prio_to_weight(Prio::USER), 215); // nice +7
        assert_eq!(prio_to_weight(Prio(0)), 29154); // nice -15
        assert_eq!(prio_to_weight(Prio(127)), 29); // nice +16
    }

    #[test]
    fn aix_keys_reproduce_priority_order() {
        let mut d = AixDispatcher;
        d.on_spawn(Tid(0));
        d.on_spawn(Tid(1));
        let a = d.enqueue_key(Tid(0), Prio::FAVORED);
        let b = d.enqueue_key(Tid(1), Prio::USER);
        assert!(a < b);
        assert!(d.should_preempt(a, b, false));
        assert!(!d.should_preempt(b, a, false));
        assert!(d.should_preempt(b, b, true), "slice expiry round-robins");
        assert!(!d.should_preempt(b, b, false));
    }

    #[test]
    fn cfs_charges_inverse_to_weight() {
        let mut d = FairDispatcher::new(DispatcherKind::Cfs);
        d.on_spawn(Tid(0));
        d.on_spawn(Tid(1));
        // Equal runtime: the heavier (more favored) thread accrues less
        // virtual runtime, so it sorts ahead for the next dispatch.
        d.charge(Tid(0), Prio::FAVORED, SimDur::from_millis(10));
        d.charge(Tid(1), Prio::USER, SimDur::from_millis(10));
        let a = d.enqueue_key(Tid(0), Prio::FAVORED);
        let b = d.enqueue_key(Tid(1), Prio::USER);
        assert!(a < b, "favored thread must accrue vruntime more slowly");
    }

    #[test]
    fn cfs_wakeup_clamps_to_floor() {
        let mut d = FairDispatcher::new(DispatcherKind::Cfs);
        d.on_spawn(Tid(0));
        d.on_spawn(Tid(1));
        // Tid(0) runs a long while and its pick advances the floor.
        d.charge(Tid(0), Prio::NORMAL, SimDur::from_secs(1));
        let k = d.enqueue_key(Tid(0), Prio::NORMAL);
        d.on_pick(Tid(0), k);
        // Tid(1) "slept" the whole time (vrt still 0): it re-enters at
        // the floor, not with a full second of starvation credit.
        let k1 = d.enqueue_key(Tid(1), Prio::NORMAL);
        assert_eq!(k1, k, "sleeper rejoins at the monotone floor");
    }

    #[test]
    fn cfs_preemption_needs_wakeup_margin() {
        let d = FairDispatcher::new(DispatcherKind::Cfs);
        let run = DispatchKey(10_000_000);
        assert!(!d.should_preempt(DispatchKey(10_000_000 - 1), run, false));
        assert!(d.should_preempt(
            DispatchKey(10_000_000 - WAKEUP_GRANULARITY_VNS - 1),
            run,
            false
        ));
        // At slice expiry any at-least-as-deserving candidate takes over.
        assert!(d.should_preempt(run, run, true));
        assert!(!d.should_preempt(DispatchKey(10_000_001), run, true));
    }

    #[test]
    fn eevdf_orders_by_virtual_deadline() {
        let mut d = FairDispatcher::new(DispatcherKind::Eevdf);
        d.on_spawn(Tid(0));
        d.on_spawn(Tid(1));
        // Same vruntime: the heavier thread's request spans less virtual
        // time, so its deadline is earlier.
        let heavy = d.enqueue_key(Tid(0), Prio::FAVORED);
        let light = d.enqueue_key(Tid(1), Prio::USER);
        assert!(heavy < light);
        assert!(d.should_preempt(heavy, light, false));
        assert!(!d.should_preempt(light, heavy, false));
    }

    #[test]
    fn fair_slice_splits_latency_with_floor() {
        let d = FairDispatcher::new(DispatcherKind::Cfs);
        let ts = SimDur::from_millis(10);
        assert_eq!(d.slice_len(ts, 0), SCHED_LATENCY);
        assert_eq!(d.slice_len(ts, 1), SCHED_LATENCY / 2);
        assert_eq!(d.slice_len(ts, 100), MIN_GRANULARITY);
        // AIX ignores contention entirely.
        assert_eq!(AixDispatcher.slice_len(ts, 100), ts);
    }

    #[test]
    fn fair_state_round_trips() {
        let mut d = FairDispatcher::new(DispatcherKind::Eevdf);
        d.on_spawn(Tid(0));
        d.on_spawn(Tid(1));
        d.charge(Tid(0), Prio::USER, SimDur::from_millis(7));
        let k = d.enqueue_key(Tid(0), Prio::USER);
        d.on_pick(Tid(0), k);
        let snap = d.snapshot_state();
        let mut fresh = FairDispatcher::new(DispatcherKind::Eevdf);
        fresh.on_spawn(Tid(0));
        fresh.on_spawn(Tid(1));
        fresh.restore_state(&snap).unwrap();
        assert_eq!(fresh.vrt, d.vrt);
        assert_eq!(fresh.min_vrt, d.min_vrt);
        // Mismatched thread count is a loud error, not silent corruption.
        let mut small = FairDispatcher::new(DispatcherKind::Eevdf);
        small.on_spawn(Tid(0));
        assert!(small.restore_state(&snap).is_err());
        // AIX carries no state and rejects any.
        assert!(AixDispatcher.restore_state(&Value::Null).is_ok());
        assert!(AixDispatcher.restore_state(&snap).is_err());
    }
}
