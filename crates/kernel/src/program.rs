//! Thread programs: the behaviour of every schedulable entity.
//!
//! Every thread in the simulation — MPI ranks, MPI progress threads,
//! system daemons, the cron job, the co-scheduler, the I/O daemon — is a
//! state machine implementing [`Program`]. When the thread holds a CPU and
//! has finished its previous action, the kernel calls
//! [`Program::step`]; the returned [`Action`] tells the kernel what the
//! thread does next. Durations are *CPU demand*: interference (ticks,
//! IPIs, device interrupts, preemption) stretches them in wall-clock time,
//! which is exactly the phenomenon the paper studies.

use crate::io::IoRequest;
use crate::msg::{Message, SrcSel, TagSel};
use crate::types::{Prio, Tid};
use pa_simkit::{SimDur, SimTime};
use serde::value::Value;
use serde::{Deserialize, Serialize};

/// What a thread does next.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Burn CPU for the given demand (compute phase, daemon burst, ...).
    Compute(SimDur),
    /// Send a message. The kernel charges the configured send overhead to
    /// this thread, then hands the message to the local mailbox or fabric.
    Send(Message),
    /// Wait for a message matching the selectors.
    Recv {
        /// Tag selector.
        tag: TagSel,
        /// Source selector.
        src: SrcSel,
        /// Busy-poll on the CPU (MPI style) or block (daemon style).
        wait: WaitMode,
    },
    /// Sleep until the given *local-time* instant. Wakeups ride the tick
    /// callout queue, so actual wake time quantizes to tick boundaries —
    /// the mechanism behind big-tick daemon batching (§3.1.1).
    SleepUntil(SimTime),
    /// Change another thread's (or one's own) dispatching priority; this
    /// is how the co-scheduler cycles tasks between favored and unfavored.
    SetPriority {
        /// Thread to change.
        target: Tid,
        /// New priority.
        prio: Prio,
    },
    /// Submit an I/O request and block until the I/O daemon completes it.
    IoSubmit {
        /// Transfer size.
        bytes: u64,
    },
    /// (I/O daemon only) mark a request complete, waking the requester.
    IoComplete(IoRequest),
    /// (I/O daemon only) block until a request arrives.
    IoIdle,
    /// Write a trace record visible to the analysis tooling. The kernel
    /// stamps it with this thread's id.
    Trace {
        /// Which application-level hook (AppMarker / CollBegin / CollEnd).
        hook: pa_trace::HookId,
        /// Hook-specific value.
        aux: u64,
    },
    /// Give up the CPU voluntarily (requeued at current priority).
    Yield,
    /// Terminate the thread.
    Exit,
}

/// Whether a receive spins on the CPU, blocks, or returns immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WaitMode {
    /// Busy-poll: the thread keeps its CPU while waiting (IBM MPI user-space
    /// polling). A preempted poller cannot notice message arrival until it
    /// is dispatched again — the cascade amplifier of §2.
    Poll,
    /// Block: the thread leaves the CPU and is woken on delivery.
    Block,
    /// Non-blocking probe: if nothing matches, the program is stepped again
    /// immediately with no received message. The co-scheduler drains its
    /// control pipe this way at each window edge.
    Try,
}

/// What the kernel exposes to a stepping program.
#[derive(Debug)]
pub struct StepCtx<'a> {
    /// Current global (switch) time.
    pub now: SimTime,
    /// Current node-local time.
    pub local_now: SimTime,
    /// This node's index.
    pub node: u32,
    /// This thread's id.
    pub tid: Tid,
    /// This thread's current priority.
    pub prio: Prio,
    /// The message that satisfied the immediately preceding `Recv`, if any.
    pub received: Option<Message>,
    /// Pending I/O requests (only the designated I/O daemon should take).
    pub(crate) io_pending: &'a mut std::collections::VecDeque<IoRequest>,
}

impl StepCtx<'_> {
    /// Take the message that completed the last `Recv`. Panics if the
    /// program did not just complete a receive — that is a program bug.
    pub fn take_received(&mut self) -> Message {
        self.received
            .take()
            .expect("take_received called without a completed Recv")
    }

    /// Take the message that completed the last `Recv`, if any. A `Try`
    /// receive that matched nothing steps the program with `None` here.
    pub fn try_received(&mut self) -> Option<Message> {
        self.received.take()
    }

    /// (I/O daemon) pop the oldest pending I/O request.
    pub fn take_io_request(&mut self) -> Option<IoRequest> {
        self.io_pending.pop_front()
    }

    /// (I/O daemon) how many I/O requests are pending.
    pub fn io_backlog(&self) -> usize {
        self.io_pending.len()
    }
}

/// A thread body. Implementations are Mealy machines: `step` is called
/// each time the previous action completes, and must eventually return
/// [`Action::Exit`] (daemons run forever and are torn down with the node).
///
/// Programs must be `Send`: the sharded cluster engine processes each
/// node's kernel — programs included — on whichever worker thread owns
/// the shard for the current window.
pub trait Program: Send {
    /// Produce the next action.
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Action;

    /// Human-readable program kind (diagnostics only).
    fn kind(&self) -> &'static str {
        "program"
    }

    /// Deterministic program-level counters, as (metric name, value)
    /// pairs. The observability layer aggregates these per [`Program::kind`]
    /// after a run; values must depend only on simulation state so that
    /// snapshots stay byte-identical across reruns. The default is empty —
    /// only programs with interesting counters override it.
    fn metrics(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }

    /// Serialize this program's mutable state for a checkpoint. Restore
    /// rebuilds the program from the experiment spec (same constructor,
    /// same arguments) and then overlays this value via
    /// [`Program::restore_state`] — so only state that changes after
    /// construction needs to be captured. Stateless programs keep the
    /// default `Null`.
    fn snapshot_state(&self) -> Value {
        Value::Null
    }

    /// Overlay checkpointed state captured by [`Program::snapshot_state`]
    /// onto a freshly rebuilt program. The default accepts anything and
    /// changes nothing (correct iff `snapshot_state` returned `Null`).
    fn restore_state(&mut self, state: &Value) -> Result<(), serde::Error> {
        let _ = state;
        Ok(())
    }
}

/// A program built from a fixed list of actions, then `Exit`.
/// Used heavily in kernel unit tests.
#[derive(Debug)]
pub struct Script {
    actions: std::vec::IntoIter<Action>,
}

impl Script {
    /// Program that performs `actions` in order, then exits.
    pub fn new(actions: Vec<Action>) -> Script {
        Script {
            actions: actions.into_iter(),
        }
    }
}

impl Program for Script {
    fn step(&mut self, _ctx: &mut StepCtx<'_>) -> Action {
        self.actions.next().unwrap_or(Action::Exit)
    }

    fn kind(&self) -> &'static str {
        "script"
    }

    fn snapshot_state(&self) -> Value {
        self.actions.as_slice().to_vec().to_value()
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), serde::Error> {
        let remaining: Vec<Action> = Deserialize::from_value(state)?;
        self.actions = remaining.into_iter();
        Ok(())
    }
}

/// A program that loops forever: `Compute(burst)`, then sleep so wakeups
/// land on multiples of `period` (local time). The canonical periodic
/// daemon shape; pa-noise builds richer variants.
#[derive(Debug)]
pub struct PeriodicLoop {
    /// Period between wakeups (local time).
    pub period: SimDur,
    /// CPU demand per wakeup.
    pub burst: SimDur,
    /// Phase offset of wakeups within the period.
    pub phase: SimDur,
    fired: bool,
}

impl PeriodicLoop {
    /// New periodic loop.
    pub fn new(period: SimDur, burst: SimDur, phase: SimDur) -> PeriodicLoop {
        PeriodicLoop {
            period,
            burst,
            phase,
            // First action is the sleep to the phase boundary, not a
            // burst: spawning must not synchronize a burst storm.
            fired: true,
        }
    }
}

impl Program for PeriodicLoop {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Action {
        if self.fired {
            self.fired = false;
            Action::SleepUntil(ctx.local_now.next_boundary(self.period, self.phase))
        } else {
            self.fired = true;
            Action::Compute(self.burst)
        }
    }

    fn kind(&self) -> &'static str {
        "periodic"
    }

    fn snapshot_state(&self) -> Value {
        Value::Bool(self.fired)
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), serde::Error> {
        self.fired = Deserialize::from_value(state)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    fn ctx(io: &mut VecDeque<IoRequest>) -> StepCtx<'_> {
        StepCtx {
            now: SimTime::from_millis(15),
            local_now: SimTime::from_millis(15),
            node: 0,
            tid: Tid(1),
            prio: Prio(60),
            received: None,
            io_pending: io,
        }
    }

    #[test]
    fn script_plays_actions_then_exits() {
        let mut io = VecDeque::new();
        let mut s = Script::new(vec![Action::Compute(SimDur::from_micros(5)), Action::Yield]);
        let mut c = ctx(&mut io);
        assert_eq!(s.step(&mut c), Action::Compute(SimDur::from_micros(5)));
        assert_eq!(s.step(&mut c), Action::Yield);
        assert_eq!(s.step(&mut c), Action::Exit);
        assert_eq!(s.step(&mut c), Action::Exit);
    }

    #[test]
    fn periodic_alternates_sleep_and_burst() {
        let mut io = VecDeque::new();
        let mut p = PeriodicLoop::new(
            SimDur::from_millis(10),
            SimDur::from_micros(300),
            SimDur::ZERO,
        );
        let mut c = ctx(&mut io);
        // Sleep-first: local_now = 15ms -> next boundary = 20ms.
        assert_eq!(p.step(&mut c), Action::SleepUntil(SimTime::from_millis(20)));
        assert_eq!(p.step(&mut c), Action::Compute(SimDur::from_micros(300)));
        assert_eq!(p.step(&mut c), Action::SleepUntil(SimTime::from_millis(20)));
    }

    #[test]
    fn take_received_consumes() {
        let mut io = VecDeque::new();
        let mut c = ctx(&mut io);
        c.received = Some(Message {
            src: crate::msg::Endpoint {
                node: 0,
                tid: Tid(2),
            },
            dst: crate::msg::Endpoint {
                node: 0,
                tid: Tid(1),
            },
            tag: 5,
            bytes: 8,
            sent_at: SimTime::ZERO,
            payload: 42,
        });
        assert_eq!(c.take_received().payload, 42);
        assert!(c.received.is_none());
    }

    #[test]
    #[should_panic(expected = "without a completed Recv")]
    fn take_received_twice_panics() {
        let mut io = VecDeque::new();
        let mut c = ctx(&mut io);
        c.take_received();
    }

    #[test]
    fn io_queue_access() {
        let mut io = VecDeque::new();
        io.push_back(IoRequest {
            token: 1,
            requester: Tid(3),
            bytes: 4096,
        });
        let mut c = ctx(&mut io);
        assert_eq!(c.io_backlog(), 1);
        let req = c.take_io_request().unwrap();
        assert_eq!(req.requester, Tid(3));
        assert_eq!(c.io_backlog(), 0);
        assert!(c.take_io_request().is_none());
    }
}
