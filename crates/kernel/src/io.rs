//! The node's I/O request path.
//!
//! An application thread performing I/O (the ALE3D proxy's initial-state
//! read and restart dump) submits an [`IoRequest`] and blocks. The request
//! is serviced by the designated I/O daemon thread (mmfsd in the GPFS
//! configuration, syncd otherwise), which must itself win a CPU at its
//! dispatching priority to make progress. That dependency is what the §5.3
//! ALE3D experiment exposes: a co-scheduler that starves the I/O daemon
//! starves the application's own I/O phases.

use crate::types::Tid;
use serde::{Deserialize, Serialize};

/// A pending I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoRequest {
    /// Unique token (assigned by the kernel at submission).
    pub token: u64,
    /// The blocked thread to wake on completion.
    pub requester: Tid,
    /// Transfer size in bytes (drives daemon service time).
    pub bytes: u64,
}

/// Service-time model for the I/O daemon.
///
/// `service_time = per_request + bytes * per_byte`. The defaults model a
/// GPFS-like parallel filesystem client: ~200 µs of per-request daemon work
/// plus ~1 µs per 4 KiB block (disk/server latency is folded into the
/// per-request term; what matters to the study is *daemon CPU demand*).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IoServiceModel {
    /// Fixed daemon CPU demand per request, nanoseconds.
    pub per_request_ns: u64,
    /// Additional demand per byte, nanoseconds (fractional via f64).
    pub per_byte_ns: f64,
}

impl Default for IoServiceModel {
    fn default() -> Self {
        IoServiceModel {
            per_request_ns: 200_000,    // 200 µs
            per_byte_ns: 0.25e-3 * 1e3, // 0.25 ns/byte ≈ 1 µs per 4 KiB
        }
    }
}

impl IoServiceModel {
    /// Daemon CPU demand to service one request.
    pub fn service_time(&self, bytes: u64) -> pa_simkit::SimDur {
        let extra = (bytes as f64 * self.per_byte_ns) as u64;
        pa_simkit::SimDur::from_nanos(self.per_request_ns + extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_simkit::SimDur;

    #[test]
    fn service_time_scales_with_bytes() {
        let m = IoServiceModel::default();
        let small = m.service_time(0);
        let big = m.service_time(1 << 20);
        assert_eq!(small, SimDur::from_micros(200));
        assert!(big > small);
        // 1 MiB at 0.25 ns/byte = 262144 ns extra.
        assert_eq!(big, SimDur::from_nanos(200_000 + 262_144));
    }

    #[test]
    fn custom_model() {
        let m = IoServiceModel {
            per_request_ns: 1_000,
            per_byte_ns: 1.0,
        };
        assert_eq!(m.service_time(500), SimDur::from_nanos(1_500));
    }
}
