//! Kernel scheduling options and cost model.
//!
//! [`SchedOptions`] is the simulator's equivalent of the paper's
//! `schedtune` additions (§3.2.1 closing remark): a block of switches that
//! select between stock AIX behaviour and the prototype kernel's
//! parallel-aware behaviour. `pa-core` exposes the `vanilla()` /
//! `prototype()` presets as the two kernels compared throughout §5.

use crate::types::{DaemonQueuePolicy, DispatcherKind, PreemptMode, TickAlign};
use pa_simkit::SimDur;
use serde::{Deserialize, Serialize};

/// Fixed costs charged by kernel mechanisms.
///
/// Values are calibrated to the paper's Power3/AIX context where stated
/// (tick worst-case latency, IPI "tenths of a millisecond") and to
/// contemporaneous measurements otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// CPU time stolen by one tick interrupt (decrementer processing).
    pub tick_cost: SimDur,
    /// Extra CPU time per callout (daemon wakeup) processed at a tick.
    pub callout_cost: SimDur,
    /// Context-switch cost charged to the incoming thread.
    pub ctx_switch: SimDur,
    /// Minimum latency of a preemption IPI ("tenths of a millisecond").
    pub ipi_latency_min: SimDur,
    /// Maximum latency of a preemption IPI.
    pub ipi_latency_max: SimDur,
    /// CPU time stolen by servicing an IPI.
    pub ipi_cost: SimDur,
    /// Delay between message arrival and a *running* poller noticing it.
    pub poll_detect: SimDur,
    /// CPU overhead charged when a send is performed.
    pub send_overhead: SimDur,
    /// CPU overhead charged when a receive completes.
    pub recv_overhead: SimDur,
    /// Multiplicative burst inflation for globally-queued daemons
    /// (storage-locality loss, §3.1.2: "significant overhead to the
    /// daemons as they execute" — e.g. 3 ms → ~3.1 ms).
    pub global_queue_penalty: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            tick_cost: SimDur::from_micros(5),
            callout_cost: SimDur::from_micros(2),
            ctx_switch: SimDur::from_micros(5),
            ipi_latency_min: SimDur::from_micros(100),
            ipi_latency_max: SimDur::from_micros(300),
            ipi_cost: SimDur::from_micros(2),
            poll_detect: SimDur::from_nanos(800),
            send_overhead: SimDur::from_micros(2),
            recv_overhead: SimDur::from_micros(2),
            global_queue_penalty: 1.04,
        }
    }
}

/// The `schedtune`-style option block selecting kernel behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedOptions {
    /// Base tick period (AIX: 10 ms, i.e. 100 Hz).
    pub base_tick: SimDur,
    /// The "big tick" constant: physical ticks are generated once where
    /// the default kernel would have generated `big_tick` (§3.1.1; the
    /// study generally chose 25, giving a 250 ms effective tick).
    pub big_tick: u32,
    /// Tick phasing across the node's CPUs (§3.2.1).
    pub tick_align: TickAlign,
    /// Cross-CPU preemption mechanism (§3).
    pub preempt: PreemptMode,
    /// Ready-queue policy for non-application threads (§3.1.2).
    pub daemon_queue: DaemonQueuePolicy,
    /// Round-robin timeslice for equal-priority threads.
    pub timeslice: SimDur,
    /// Whether an idle CPU steals pinned work from other CPUs' queues
    /// (AIX does; "this is atypical when running large parallel
    /// applications" only because CPUs are rarely idle).
    pub idle_steal: bool,
    /// Mechanism costs.
    pub costs: CostModel,
    /// Dispatcher policy ordering the ready queues. `Aix` reproduces the
    /// 2003 priority-band semantics exactly; the fair policies re-ask the
    /// paper's question under CFS/EEVDF-style scheduling. Kept last so
    /// the canonical serialized form appends rather than reorders.
    pub dispatcher: DispatcherKind,
}

impl SchedOptions {
    /// Stock AIX 4.3.3/5.1 behaviour: 100 Hz staggered ticks, lazy
    /// cross-CPU preemption, per-CPU daemon queues.
    pub fn vanilla() -> SchedOptions {
        SchedOptions {
            base_tick: SimDur::from_millis(10),
            big_tick: 1,
            tick_align: TickAlign::Staggered,
            preempt: PreemptMode::Lazy,
            daemon_queue: DaemonQueuePolicy::PerCpu,
            timeslice: SimDur::from_millis(10),
            idle_steal: true,
            costs: CostModel::default(),
            dispatcher: DispatcherKind::Aix,
        }
    }

    /// The paper's prototype kernel: big ticks (250 ms), simultaneous
    /// ticks, improved real-time preemption (reverse preemption + multiple
    /// concurrent IPIs), and globally queued daemons.
    pub fn prototype() -> SchedOptions {
        SchedOptions {
            big_tick: 25,
            tick_align: TickAlign::Aligned,
            preempt: PreemptMode::RtIpiImproved,
            daemon_queue: DaemonQueuePolicy::Global,
            ..SchedOptions::vanilla()
        }
    }

    /// The effective tick period (`base_tick * big_tick`).
    pub fn tick_period(&self) -> SimDur {
        self.base_tick * u64::from(self.big_tick)
    }

    /// Tick phase for CPU `cpu` of `ncpus` under the configured alignment.
    pub fn tick_phase(&self, cpu: u8, ncpus: u8) -> SimDur {
        match self.tick_align {
            TickAlign::Aligned => SimDur::ZERO,
            TickAlign::Staggered => {
                // AIX staggers at 1 ms granularity on a 10 ms period; for
                // more CPUs than slots the phases wrap, which is what the
                // real staggering does too. Scale with the (possibly big)
                // tick period so staggering stays meaningful.
                let period = self.tick_period();
                period * u64::from(cpu) / u64::from(ncpus.max(1))
            }
        }
    }

    /// Validate internal consistency (costs sane, period nonzero).
    pub fn validate(&self) -> Result<(), String> {
        if self.base_tick.is_zero() {
            return Err("base_tick must be nonzero".into());
        }
        if self.big_tick == 0 {
            return Err("big_tick must be at least 1".into());
        }
        if self.costs.ipi_latency_min > self.costs.ipi_latency_max {
            return Err("ipi_latency_min exceeds ipi_latency_max".into());
        }
        if self.costs.global_queue_penalty < 1.0 {
            return Err("global_queue_penalty below 1.0 would make daemons faster off-home".into());
        }
        if self.costs.tick_cost >= self.base_tick {
            return Err("tick_cost must be far below the tick period".into());
        }
        Ok(())
    }
}

impl Default for SchedOptions {
    fn default() -> Self {
        SchedOptions::vanilla()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vanilla_matches_aix_defaults() {
        let v = SchedOptions::vanilla();
        assert_eq!(v.tick_period(), SimDur::from_millis(10));
        assert_eq!(v.preempt, PreemptMode::Lazy);
        assert_eq!(v.daemon_queue, DaemonQueuePolicy::PerCpu);
        assert_eq!(v.tick_align, TickAlign::Staggered);
        assert_eq!(v.dispatcher, DispatcherKind::Aix);
        assert!(v.validate().is_ok());
    }

    #[test]
    fn prototype_matches_paper_settings() {
        let p = SchedOptions::prototype();
        // §5.3: "the kernel was set to use a big tick interval of 250 msec".
        assert_eq!(p.tick_period(), SimDur::from_millis(250));
        assert_eq!(p.preempt, PreemptMode::RtIpiImproved);
        assert_eq!(p.daemon_queue, DaemonQueuePolicy::Global);
        assert_eq!(p.tick_align, TickAlign::Aligned);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn staggered_phases_spread_over_period() {
        let v = SchedOptions::vanilla();
        let phases: Vec<SimDur> = (0..16).map(|c| v.tick_phase(c, 16)).collect();
        assert_eq!(phases[0], SimDur::ZERO);
        for w in phases.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(*phases.last().unwrap() < v.tick_period());
    }

    #[test]
    fn aligned_phases_are_zero() {
        let p = SchedOptions::prototype();
        for c in 0..16 {
            assert_eq!(p.tick_phase(c, 16), SimDur::ZERO);
        }
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut o = SchedOptions::vanilla();
        o.big_tick = 0;
        assert!(o.validate().is_err());

        let mut o = SchedOptions::vanilla();
        o.costs.global_queue_penalty = 0.5;
        assert!(o.validate().is_err());

        let mut o = SchedOptions::vanilla();
        o.costs.ipi_latency_min = SimDur::from_millis(1);
        o.costs.ipi_latency_max = SimDur::from_micros(1);
        assert!(o.validate().is_err());

        let mut o = SchedOptions::vanilla();
        o.costs.tick_cost = SimDur::from_millis(20);
        assert!(o.validate().is_err());
    }
}
