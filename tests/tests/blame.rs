//! Property and integration tests of the wait-state blame layer
//! (`pa-blame`): the exact per-rank sum invariant over random specs, a
//! byte-identical `BlameReport` at any `--sim-threads` and campaign job
//! count, and zero attribution when there is nothing to blame.

use pa_campaign::{run_campaign, ExecutorConfig};
use pa_core::{blame_of, blame_totals, CoschedSetup, Experiment};
use pa_mpi::{MpiOp, OpList, RankWorkload};
use pa_simkit::SimDur;
use pa_workloads::{aggregate_runner, campaign_blame_totals, ScalingConfig};
use proptest::prelude::*;

/// Compute/Allreduce pairs — the shape whose laggard-driven barrier
/// waits the blame layer exists to attribute.
fn workload(pairs: usize, compute_us: u64) -> impl FnMut(u32) -> Box<dyn RankWorkload> {
    move |_rank: u32| -> Box<dyn RankWorkload> {
        Box::new(OpList::new(
            std::iter::repeat_n(
                [
                    MpiOp::Compute(SimDur::from_micros(compute_us)),
                    MpiOp::Allreduce { bytes: 64 },
                ],
                pairs,
            )
            .flatten()
            .collect(),
        ))
    }
}

proptest! {
    /// (a) Every rank's six categories sum exactly to its wall time —
    /// `analyze` panics on any violation, so constructing the blame is
    /// the assertion; the per-rank and run-total identities are then
    /// re-checked explicitly, including against the cheap scalar fold
    /// that campaign caches store.
    #[test]
    fn rank_categories_sum_to_wall_exactly(
        nodes in 2u32..5,
        tasks in 1u32..3,
        seed in 0u64..10_000,
        cosched in any::<bool>(),
        compute_us in 0u64..80,
        link_bw in (any::<bool>(), 1e6f64..1e9).prop_map(|(l, bw)| l.then_some(bw)),
    ) {
        let mut e = Experiment::new(nodes, tasks)
            .with_cpus_per_node(4)
            .with_record_all_ranks()
            .with_link_bandwidth(link_bw)
            .with_seed(seed);
        if cosched {
            e = e.with_cosched(CoschedSetup::default());
        }
        let out = e.run(&mut workload(16, compute_us));
        let blame = blame_of(&out, "prop");
        prop_assert_eq!(blame.nranks, nodes * tasks);
        for r in &blame.ranks {
            prop_assert_eq!(
                r.cats.total_ns(), r.wall_ns as i64,
                "rank {} categories do not sum to wall", r.rank
            );
        }
        prop_assert_eq!(&blame.totals, &blame_totals(&out));
        // Full capture was on, so the critical path must exist and its
        // decomposition must telescope exactly over the walked span.
        let path = blame.path.expect("record-all capture gives a path");
        prop_assert_eq!(
            path.on_path.total_ns() as u64 + path.coll_release_ns,
            path.span_ns
        );
    }

    /// (b) The rendered report is byte-identical at 1/2/4 engine worker
    /// threads: blame is derived post-hoc from canonical state, so the
    /// sharded engine must not be able to move a single byte.
    #[test]
    fn blame_report_is_byte_identical_at_any_thread_count(
        nodes in 2u32..5,
        tasks in 1u32..3,
        seed in 0u64..10_000,
        cosched in any::<bool>(),
    ) {
        let run = |threads: usize| {
            let mut e = Experiment::new(nodes, tasks)
                .with_cpus_per_node(4)
                .with_record_all_ranks()
                .with_sim_threads(threads)
                .with_seed(seed);
            if cosched {
                e = e.with_cosched(CoschedSetup::default());
            }
            let out = e.run(&mut workload(12, 20));
            pa_blame::BlameReport {
                title: "prop".into(),
                runs: vec![blame_of(&out, "prop")],
                ..pa_blame::BlameReport::default()
            }
            .to_json()
        };
        let serial = run(1);
        prop_assert_eq!(&serial, &run(2), "report diverges at 2 threads");
        prop_assert_eq!(&serial, &run(4), "report diverges at 4 threads");
    }

    /// (c) A silent-noise run on unlimited links attributes nothing to
    /// the noise or link categories, for any spec.
    #[test]
    fn quiet_runs_attribute_nothing_to_noise_or_links(
        nodes in 2u32..5,
        tasks in 1u32..3,
        seed in 0u64..10_000,
    ) {
        let out = Experiment::new(nodes, tasks)
            .with_cpus_per_node(4)
            .with_noise(pa_noise::NoiseProfile::silent())
            .with_seed(seed)
            .run(&mut workload(12, 10));
        let blame = blame_of(&out, "quiet");
        prop_assert_eq!(blame.totals.noise_ns, 0);
        prop_assert!(blame.noise.is_empty(), "no interference sources");
        prop_assert!(blame.links.is_empty(), "unlimited links never queue");
        for n in &blame.nodes {
            prop_assert_eq!(n.link_waits, 0);
            prop_assert_eq!(n.link_wait_ns, 0);
        }
    }
}

/// (b, campaign half) The `blame.*` extras every cached point carries
/// fold to the same campaign totals whether the sweep ran serially or on
/// four worker jobs — checked at the byte level through the canonical
/// report, exactly as `--blame-out` would emit it.
#[test]
fn campaign_blame_extras_are_identical_at_any_job_count() {
    let mut cfg = ScalingConfig::fig3(true);
    cfg.node_counts = vec![2, 4];
    cfg.allreduces = 48;
    cfg.seeds = vec![42, 43];
    cfg.target_sim_time = None;
    let points = cfg.points();
    let serial = run_campaign(
        &points,
        &ExecutorConfig::serial("blame-jobs1"),
        aggregate_runner,
    );
    let parallel = run_campaign(
        &points,
        &ExecutorConfig::serial("blame-jobs4").with_jobs(4),
        aggregate_runner,
    );
    assert_eq!(serial.results, parallel.results);
    let report = |results| pa_blame::BlameReport {
        title: "jobs".into(),
        campaigns: vec![campaign_blame_totals("fig3", results)],
        ..pa_blame::BlameReport::default()
    };
    let a = report(&serial.results);
    let b = report(&parallel.results);
    assert_eq!(a.to_json(), b.to_json());
    let totals = &a.campaigns[0];
    assert_eq!(totals.points, points.len() as u64);
    assert!(
        totals.wall_ns > 0,
        "campaign points must carry blame extras"
    );
    assert!(
        totals.cats.coll_wait_ns > 0,
        "a noisy fig3 sweep must accumulate collective wait"
    );
}
