//! End-to-end scenario checks across the whole stack: kernel + noise +
//! cluster + MPI + co-scheduler + workloads.

use pa_core::{CoschedSetup, Experiment, SchedOptions};
use pa_mpi::{MpiOp, OpKind, OpList, RankWorkload};
use pa_noise::NoiseProfile;
use pa_simkit::SimDur;

fn allreduces(n: usize) -> impl FnMut(u32) -> Box<dyn RankWorkload> {
    move |_r| Box::new(OpList::new(vec![MpiOp::Allreduce { bytes: 8 }; n]))
}

#[test]
fn noise_costs_performance() {
    let run = |noise: NoiseProfile| {
        let out = Experiment::new(4, 16)
            .with_noise(noise)
            .with_seed(7)
            .run(&mut allreduces(300));
        assert!(out.completed);
        out.mean_allreduce_us()
    };
    let silent = run(NoiseProfile::silent());
    let noisy = run(NoiseProfile::production().without_cron());
    assert!(
        noisy > silent * 1.02,
        "production noise should cost something: {noisy:.1} vs {silent:.1}"
    );
}

#[test]
fn fifteen_tasks_beat_sixteen_on_vanilla() {
    // §2's operational workaround: leaving one CPU per node idle absorbs
    // the daemons.
    let run = |tpn: u32| {
        let out = Experiment::new(4, tpn)
            .with_noise(NoiseProfile::production().without_cron())
            .with_seed(9)
            .run(&mut allreduces(400));
        assert!(out.completed);
        out.mean_allreduce_us()
    };
    let full = run(16);
    let reserve = run(15);
    assert!(
        reserve < full,
        "15 t/n should be faster on the vanilla kernel: {reserve:.1} vs {full:.1}"
    );
}

#[test]
fn prototype_recovers_the_reserve_cpu() {
    // The paper's punchline: fully-populated prototype nodes beat
    // 15-task vanilla nodes per-task, removing the efficiency ceiling.
    let vanilla15 = {
        let out = Experiment::new(6, 15)
            .with_noise(NoiseProfile::production().without_cron())
            .with_seed(11)
            .run(&mut allreduces(400));
        assert!(out.completed);
        out.mean_allreduce_us()
    };
    let proto16 = {
        let out = Experiment::new(6, 16)
            .with_kernel(SchedOptions::prototype())
            .with_cosched(CoschedSetup::default())
            .with_noise(NoiseProfile::production().without_cron())
            .with_seed(11)
            .run(&mut allreduces(400));
        assert!(out.completed);
        out.mean_allreduce_us()
    };
    // Same or better per-collective performance with 16/16 CPUs in use.
    assert!(
        proto16 <= vanilla15 * 1.15,
        "prototype 16 t/n ({proto16:.1}µs) should be competitive with vanilla 15 t/n ({vanilla15:.1}µs)"
    );
}

#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let out = Experiment::new(3, 16)
            .with_kernel(SchedOptions::prototype())
            .with_cosched(CoschedSetup::default())
            .with_noise(NoiseProfile::production())
            .with_seed(1234)
            .run(&mut allreduces(200));
        (
            out.wall,
            out.events,
            out.mean_allreduce_us().to_bits(),
            out.interference_fraction().to_bits(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_differ() {
    let run = |seed| {
        Experiment::new(2, 16)
            .with_noise(NoiseProfile::production().without_cron())
            .with_seed(seed)
            .run(&mut allreduces(200))
            .mean_allreduce_us()
    };
    assert_ne!(run(1).to_bits(), run(2).to_bits());
}

#[test]
fn every_collective_completes_on_every_rank() {
    let out = Experiment::new(3, 16)
        .with_kernel(SchedOptions::prototype())
        .with_cosched(CoschedSetup::default())
        .with_noise(NoiseProfile::production())
        .with_seed(5)
        .run(&mut allreduces(150));
    assert!(out.completed);
    let rec = out.job.recorder.lock().unwrap();
    assert_eq!(rec.count(OpKind::Allreduce), 150);
    rec.verify_complete(48).expect("every rank in every op");
}

#[test]
fn mixed_collectives_work_under_cosched() {
    let mut make = |_r: u32| -> Box<dyn RankWorkload> {
        let mut ops = Vec::new();
        for i in 0..40u32 {
            ops.push(MpiOp::Compute(SimDur::from_micros(50)));
            ops.push(match i % 5 {
                0 => MpiOp::Allreduce { bytes: 8 },
                1 => MpiOp::Barrier,
                2 => MpiOp::Allgather { bytes: 64 },
                3 => MpiOp::Reduce { bytes: 8 },
                _ => MpiOp::Bcast { bytes: 8 },
            });
        }
        Box::new(OpList::new(ops))
    };
    let out = Experiment::new(2, 16)
        .with_kernel(SchedOptions::prototype())
        .with_cosched(CoschedSetup::default())
        .with_noise(NoiseProfile::production().without_cron())
        .with_seed(77)
        .run(&mut make);
    assert!(out.completed, "mixed collectives deadlocked");
    let rec = out.job.recorder.lock().unwrap();
    assert!(rec.count(OpKind::Allreduce) > 0);
    assert!(rec.count(OpKind::Barrier) > 0);
    assert!(rec.count(OpKind::Allgather) > 0);
    assert!(rec.count(OpKind::Reduce) > 0);
    assert!(rec.count(OpKind::Bcast) > 0);
    rec.verify_complete(32).expect("complete");
}

#[test]
fn interference_fraction_is_sane() {
    let out = Experiment::new(2, 16)
        .with_noise(NoiseProfile::production().without_cron())
        .with_seed(3)
        .run(&mut allreduces(200));
    let f = out.interference_fraction();
    assert!(f > 0.0 && f < 0.2, "interference fraction {f}");
}
