//! Integration tests of the campaign subsystem against the real DES:
//! content-key stability, cache round-trips through disk, and the
//! bit-identical-results-at-any-job-count guarantee.

use pa_campaign::{run_campaign, Cache, ExecutorConfig, PointSpec};
use pa_workloads::{aggregate_runner, ScalingConfig};
use std::path::PathBuf;

fn quick_cfg() -> ScalingConfig {
    let mut cfg = ScalingConfig::fig3(true);
    cfg.node_counts = vec![2, 4];
    cfg.allreduces = 48;
    cfg.seeds = vec![42, 43];
    cfg.target_sim_time = None;
    cfg
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pa-campaign-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn content_keys_are_stable_across_processes() {
    // The key must not depend on iteration order, hashing randomness, or
    // anything else that varies between invocations: a fixed spec has a
    // fixed key forever (until CACHE_SCHEMA_VERSION is bumped).
    let points = quick_cfg().points();
    let again = quick_cfg().points();
    for (a, b) in points.iter().zip(&again) {
        assert_eq!(a.content_key(), b.content_key());
    }
    // Keys separate every point in the sweep.
    let mut keys: Vec<String> = points.iter().map(PointSpec::content_key).collect();
    keys.sort();
    keys.dedup();
    assert_eq!(keys.len(), points.len(), "key collision inside one sweep");
}

#[test]
fn cache_round_trips_real_results_bit_exactly() {
    let dir = temp_dir("roundtrip");
    let cfg = quick_cfg();
    let points = cfg.points();
    let spec = &points[0];
    let key = spec.content_key();
    let cache = Cache::at(&dir).unwrap();
    let fresh = aggregate_runner(spec);
    cache.store(&key, spec, &fresh).unwrap();
    let loaded = cache.lookup(&key).expect("stored entry must load");
    // f64s survive the JSON round-trip exactly, not approximately.
    assert_eq!(loaded, fresh);
    assert_eq!(
        serde_json::to_string(&loaded).unwrap(),
        serde_json::to_string(&fresh).unwrap()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn job_count_never_changes_results() {
    // Each DES run is single-threaded and fully determined by its spec,
    // so a 4-worker campaign must reproduce the serial one bit for bit.
    let points = quick_cfg().points();
    let serial = run_campaign(&points, &ExecutorConfig::serial("jobs1"), aggregate_runner);
    let parallel = run_campaign(
        &points,
        &ExecutorConfig::serial("jobs4").with_jobs(4),
        aggregate_runner,
    );
    assert_eq!(serial.results, parallel.results);
    assert!(serial.truncated.is_empty(), "fixed-work points must finish");
}

#[test]
fn second_campaign_is_served_from_cache() {
    let dir = temp_dir("hits");
    let points = quick_cfg().points();
    let exec = || {
        ExecutorConfig::serial("cache-it")
            .with_jobs(2)
            .with_cache(Cache::at(&dir).unwrap())
    };
    let first = run_campaign(&points, &exec(), aggregate_runner);
    assert_eq!(first.metrics.cache_hits, 0);
    assert_eq!(first.metrics.points_run, points.len());
    let second = run_campaign(&points, &exec(), aggregate_runner);
    assert_eq!(second.metrics.cache_hits, points.len());
    assert_eq!(second.metrics.points_run, 0);
    assert_eq!(first.results, second.results);
    let _ = std::fs::remove_dir_all(&dir);
}
