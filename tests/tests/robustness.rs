//! Robustness: edge configurations and failure-injection-style stress.

use pa_campaign::{run_campaign_resumable, Cache, CheckpointCtx, ExecutorConfig};
use pa_core::{CoschedSetup, Experiment, SchedOptions};
use pa_mpi::{Algorithm, MpiConfig, MpiOp, OpList, RankWorkload};
use pa_noise::NoiseProfile;
use pa_simkit::SimDur;
use pa_workloads::{aggregate_runner_ckpt, run_point_ckpt, ScalingConfig};

fn allreduces(n: usize) -> impl FnMut(u32) -> Box<dyn RankWorkload> {
    move |_r| Box::new(OpList::new(vec![MpiOp::Allreduce { bytes: 8 }; n]))
}

#[test]
fn single_node_single_task() {
    let out = Experiment::new(1, 1)
        .with_cpus_per_node(1)
        .with_noise(NoiseProfile::silent())
        .with_progress(None)
        .with_seed(1)
        .run(&mut allreduces(50));
    assert!(out.completed, "degenerate 1×1 cluster must still work");
}

#[test]
fn one_task_per_node_cross_node_only() {
    let out = Experiment::new(8, 1)
        .with_cpus_per_node(2)
        .with_noise(NoiseProfile::dedicated())
        .with_seed(2)
        .run(&mut allreduces(100));
    assert!(out.completed);
    assert!(out.mean_allreduce_us() > 0.0);
}

#[test]
fn extreme_clock_skew_does_not_break_collectives() {
    let mut e = Experiment::new(4, 8)
        .with_cpus_per_node(8)
        .with_noise(NoiseProfile::dedicated())
        .with_seed(3);
    e.skew_max = SimDur::from_secs(2);
    let out = e.run(&mut allreduces(100));
    assert!(out.completed, "skewed clocks must not deadlock the job");
}

#[test]
fn heavy_noise_storm_still_completes() {
    // 10× production noise: a daemon storm. Slower, but never stuck.
    // Long enough (~0.5 s simulated) that every storm daemon fires.
    let out = Experiment::new(2, 16)
        .with_noise(NoiseProfile::production().without_cron().scaled(10.0))
        .with_seed(4)
        .with_horizon(SimDur::from_secs(600))
        .run(&mut allreduces(1_500));
    assert!(out.completed, "noise storm deadlocked the job");
    let calm = Experiment::new(2, 16)
        .with_noise(NoiseProfile::production().without_cron())
        .with_seed(4)
        .run(&mut allreduces(1_500));
    assert!(
        out.mean_allreduce_us() > calm.mean_allreduce_us(),
        "storm {} vs calm {}",
        out.mean_allreduce_us(),
        calm.mean_allreduce_us()
    );
}

#[test]
fn blocking_mpi_mode_works() {
    // Interrupt-driven (blocking) waits instead of busy polling.
    let cfg = MpiConfig {
        polling: false,
        ..MpiConfig::default()
    };
    let out = Experiment::new(2, 8)
        .with_cpus_per_node(8)
        .with_mpi(cfg)
        .with_noise(NoiseProfile::dedicated())
        .with_seed(5)
        .run(&mut allreduces(100));
    assert!(out.completed, "blocking-mode collectives deadlocked");
}

#[test]
fn recursive_doubling_algorithm_end_to_end() {
    let cfg = MpiConfig {
        algorithm: Algorithm::RecursiveDoubling,
        ..MpiConfig::default()
    };
    // Non-power-of-two rank count exercises the fold-in/fold-out path.
    let out = Experiment::new(3, 5)
        .with_cpus_per_node(8)
        .with_mpi(cfg)
        .with_noise(NoiseProfile::dedicated())
        .with_seed(6)
        .run(&mut allreduces(80));
    assert!(out.completed);
    out.job
        .recorder
        .lock()
        .unwrap()
        .verify_complete(15)
        .expect("all 15 ranks completed every op");
}

#[test]
fn cosched_with_partial_nodes() {
    // 15 t/n with the co-scheduler: the idle CPU plus priority windows.
    let out = Experiment::new(2, 15)
        .with_kernel(SchedOptions::prototype())
        .with_cosched(CoschedSetup::default())
        .with_noise(NoiseProfile::production().without_cron())
        .with_seed(7)
        .run(&mut allreduces(200));
    assert!(out.completed);
}

#[test]
fn zero_duty_cycle_is_survivable() {
    // duty = 0: the job is permanently unfavored. It must still finish —
    // daemons are a tiny fraction of CPU; the job is just never boosted.
    let mut setup = CoschedSetup::default();
    setup.params.duty = 0.0;
    let out = Experiment::new(2, 8)
        .with_cpus_per_node(8)
        .with_kernel(SchedOptions::prototype())
        .with_cosched(setup)
        .with_noise(NoiseProfile::dedicated())
        .with_seed(8)
        .run(&mut allreduces(100));
    assert!(out.completed);
}

#[test]
fn large_payload_allreduce() {
    // 1 MiB payloads shift the fabric into the bandwidth regime.
    let small = Experiment::new(2, 8)
        .with_cpus_per_node(8)
        .with_noise(NoiseProfile::silent())
        .with_progress(None)
        .with_seed(9)
        .run(&mut |_r| {
            Box::new(OpList::new(vec![MpiOp::Allreduce { bytes: 8 }; 20])) as Box<dyn RankWorkload>
        });
    let big = Experiment::new(2, 8)
        .with_cpus_per_node(8)
        .with_noise(NoiseProfile::silent())
        .with_progress(None)
        .with_seed(9)
        .run(&mut |_r| {
            Box::new(OpList::new(vec![MpiOp::Allreduce { bytes: 1 << 20 }; 20]))
                as Box<dyn RankWorkload>
        });
    assert!(small.completed && big.completed);
    assert!(
        big.mean_allreduce_us() > 10.0 * small.mean_allreduce_us(),
        "1 MiB payloads should be bandwidth-bound: {} vs {}",
        big.mean_allreduce_us(),
        small.mean_allreduce_us()
    );
}

// ---------------------------------------------------------------------
// Interrupted campaigns: a killed invocation must resume — from the
// cache for points that finished, from a mid-run checkpoint for the
// point it died inside — to results bit-identical to an uninterrupted
// campaign's.
// ---------------------------------------------------------------------

#[test]
fn interrupted_campaign_resumes_bit_identically() {
    let mut cfg = ScalingConfig::fig3(true);
    cfg.node_counts = vec![2, 4];
    cfg.allreduces = 48;
    cfg.seeds = vec![42, 43];
    cfg.target_sim_time = None;
    let points = cfg.points();
    let every = SimDur::from_micros(200);
    let tag =
        |t: &str| std::env::temp_dir().join(format!("pa-robustness-{t}-{}", std::process::id()));
    let (dir_ref, dir_int) = (tag("ckpt-ref"), tag("ckpt-int"));
    let _ = std::fs::remove_dir_all(&dir_ref);
    let _ = std::fs::remove_dir_all(&dir_int);

    // Uninterrupted reference campaign, cold cache of its own.
    let exec_ref = ExecutorConfig::serial("ref")
        .with_cache(Cache::at(&dir_ref).unwrap())
        .with_checkpoint_every(every);
    let reference = run_campaign_resumable(&points, &exec_ref, aggregate_runner_ckpt);
    assert!(reference.truncated.is_empty());

    // "Killed" campaign: the first half of the points finished and were
    // cached before the process died …
    let exec_int = || {
        ExecutorConfig::serial("int")
            .with_cache(Cache::at(&dir_int).unwrap())
            .with_checkpoint_every(every)
    };
    let half = points.len() / 2;
    let partial = run_campaign_resumable(&points[..half], &exec_int(), aggregate_runner_ckpt);
    assert_eq!(partial.results, reference.results[..half]);

    // … and the invocation died inside the next point, leaving its
    // periodic checkpoint behind (emulated by running that point alone
    // with checkpointing armed at the campaign's own checkpoint path;
    // the file left behind captures a mid-run window barrier).
    let victim = &points[half];
    let ckpt_path = Cache::at(&dir_int)
        .unwrap()
        .dir()
        .join("checkpoints")
        .join(format!("{}.json", victim.content_key()));
    let killed = run_point_ckpt(
        victim,
        Some(&CheckpointCtx {
            path: ckpt_path.clone(),
            every,
        }),
    );
    assert!(killed.completed);
    assert!(
        ckpt_path.exists(),
        "no mid-run checkpoint written — shrink `every`"
    );

    // Warm re-run of the full campaign: the cached half is served from
    // disk, the victim restores from its checkpoint and replays only the
    // tail, the rest run fresh. Results must match the uninterrupted
    // campaign bit for bit, and the served checkpoint must be gone.
    let resumed = run_campaign_resumable(&points, &exec_int(), aggregate_runner_ckpt);
    assert_eq!(resumed.results, reference.results);
    assert_eq!(resumed.metrics.cache_hits, half);
    assert!(
        !ckpt_path.exists(),
        "checkpoint must be deleted once the point's result is cached"
    );

    let _ = std::fs::remove_dir_all(&dir_ref);
    let _ = std::fs::remove_dir_all(&dir_int);
}

#[test]
fn damaged_checkpoint_falls_back_to_a_fresh_run() {
    // Same policy as corrupt cache entries: a checkpoint that fails
    // verification is ignored (and removed), never fatal, and the rerun
    // reproduces the undamaged result exactly.
    let mut cfg = ScalingConfig::fig3(true);
    cfg.node_counts = vec![2];
    cfg.allreduces = 48;
    cfg.seeds = vec![42];
    cfg.target_sim_time = None;
    let spec = &cfg.points()[0];
    let every = SimDur::from_micros(200);
    let path = std::env::temp_dir().join(format!(
        "pa-robustness-damaged-ckpt-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let ctx = CheckpointCtx {
        path: path.clone(),
        every,
    };
    let reference = run_point_ckpt(spec, Some(&ctx));
    assert!(path.exists(), "no checkpoint written — shrink `every`");

    // Flip one byte inside the hashed payload.
    let mut bytes = std::fs::read(&path).unwrap();
    let i = bytes.len() / 2;
    bytes[i] ^= 1;
    std::fs::write(&path, &bytes).unwrap();

    let rerun = run_point_ckpt(spec, Some(&ctx));
    assert_eq!(rerun.wall, reference.wall);
    assert_eq!(rerun.events, reference.events);
    assert_eq!(
        rerun.mean_allreduce_us().to_bits(),
        reference.mean_allreduce_us().to_bits()
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn empty_workload_exits_immediately() {
    let out = Experiment::new(2, 4)
        .with_cpus_per_node(4)
        .with_noise(NoiseProfile::dedicated())
        .with_seed(10)
        .run(&mut |_r| Box::new(OpList::new(Vec::new())) as Box<dyn RankWorkload>);
    assert!(out.completed);
    assert!(
        out.wall < SimDur::from_millis(50),
        "empty job took {}",
        out.wall
    );
}
