//! Robustness: edge configurations and failure-injection-style stress.

use pa_core::{CoschedSetup, Experiment, SchedOptions};
use pa_mpi::{Algorithm, MpiConfig, MpiOp, OpList, RankWorkload};
use pa_noise::NoiseProfile;
use pa_simkit::SimDur;

fn allreduces(n: usize) -> impl FnMut(u32) -> Box<dyn RankWorkload> {
    move |_r| Box::new(OpList::new(vec![MpiOp::Allreduce { bytes: 8 }; n]))
}

#[test]
fn single_node_single_task() {
    let out = Experiment::new(1, 1)
        .with_cpus_per_node(1)
        .with_noise(NoiseProfile::silent())
        .with_progress(None)
        .with_seed(1)
        .run(&mut allreduces(50));
    assert!(out.completed, "degenerate 1×1 cluster must still work");
}

#[test]
fn one_task_per_node_cross_node_only() {
    let out = Experiment::new(8, 1)
        .with_cpus_per_node(2)
        .with_noise(NoiseProfile::dedicated())
        .with_seed(2)
        .run(&mut allreduces(100));
    assert!(out.completed);
    assert!(out.mean_allreduce_us() > 0.0);
}

#[test]
fn extreme_clock_skew_does_not_break_collectives() {
    let mut e = Experiment::new(4, 8)
        .with_cpus_per_node(8)
        .with_noise(NoiseProfile::dedicated())
        .with_seed(3);
    e.skew_max = SimDur::from_secs(2);
    let out = e.run(&mut allreduces(100));
    assert!(out.completed, "skewed clocks must not deadlock the job");
}

#[test]
fn heavy_noise_storm_still_completes() {
    // 10× production noise: a daemon storm. Slower, but never stuck.
    // Long enough (~0.5 s simulated) that every storm daemon fires.
    let out = Experiment::new(2, 16)
        .with_noise(NoiseProfile::production().without_cron().scaled(10.0))
        .with_seed(4)
        .with_horizon(SimDur::from_secs(600))
        .run(&mut allreduces(1_500));
    assert!(out.completed, "noise storm deadlocked the job");
    let calm = Experiment::new(2, 16)
        .with_noise(NoiseProfile::production().without_cron())
        .with_seed(4)
        .run(&mut allreduces(1_500));
    assert!(
        out.mean_allreduce_us() > calm.mean_allreduce_us(),
        "storm {} vs calm {}",
        out.mean_allreduce_us(),
        calm.mean_allreduce_us()
    );
}

#[test]
fn blocking_mpi_mode_works() {
    // Interrupt-driven (blocking) waits instead of busy polling.
    let cfg = MpiConfig {
        polling: false,
        ..MpiConfig::default()
    };
    let out = Experiment::new(2, 8)
        .with_cpus_per_node(8)
        .with_mpi(cfg)
        .with_noise(NoiseProfile::dedicated())
        .with_seed(5)
        .run(&mut allreduces(100));
    assert!(out.completed, "blocking-mode collectives deadlocked");
}

#[test]
fn recursive_doubling_algorithm_end_to_end() {
    let cfg = MpiConfig {
        algorithm: Algorithm::RecursiveDoubling,
        ..MpiConfig::default()
    };
    // Non-power-of-two rank count exercises the fold-in/fold-out path.
    let out = Experiment::new(3, 5)
        .with_cpus_per_node(8)
        .with_mpi(cfg)
        .with_noise(NoiseProfile::dedicated())
        .with_seed(6)
        .run(&mut allreduces(80));
    assert!(out.completed);
    out.job
        .recorder
        .lock()
        .unwrap()
        .verify_complete(15)
        .expect("all 15 ranks completed every op");
}

#[test]
fn cosched_with_partial_nodes() {
    // 15 t/n with the co-scheduler: the idle CPU plus priority windows.
    let out = Experiment::new(2, 15)
        .with_kernel(SchedOptions::prototype())
        .with_cosched(CoschedSetup::default())
        .with_noise(NoiseProfile::production().without_cron())
        .with_seed(7)
        .run(&mut allreduces(200));
    assert!(out.completed);
}

#[test]
fn zero_duty_cycle_is_survivable() {
    // duty = 0: the job is permanently unfavored. It must still finish —
    // daemons are a tiny fraction of CPU; the job is just never boosted.
    let mut setup = CoschedSetup::default();
    setup.params.duty = 0.0;
    let out = Experiment::new(2, 8)
        .with_cpus_per_node(8)
        .with_kernel(SchedOptions::prototype())
        .with_cosched(setup)
        .with_noise(NoiseProfile::dedicated())
        .with_seed(8)
        .run(&mut allreduces(100));
    assert!(out.completed);
}

#[test]
fn large_payload_allreduce() {
    // 1 MiB payloads shift the fabric into the bandwidth regime.
    let small = Experiment::new(2, 8)
        .with_cpus_per_node(8)
        .with_noise(NoiseProfile::silent())
        .with_progress(None)
        .with_seed(9)
        .run(&mut |_r| {
            Box::new(OpList::new(vec![MpiOp::Allreduce { bytes: 8 }; 20])) as Box<dyn RankWorkload>
        });
    let big = Experiment::new(2, 8)
        .with_cpus_per_node(8)
        .with_noise(NoiseProfile::silent())
        .with_progress(None)
        .with_seed(9)
        .run(&mut |_r| {
            Box::new(OpList::new(vec![MpiOp::Allreduce { bytes: 1 << 20 }; 20]))
                as Box<dyn RankWorkload>
        });
    assert!(small.completed && big.completed);
    assert!(
        big.mean_allreduce_us() > 10.0 * small.mean_allreduce_us(),
        "1 MiB payloads should be bandwidth-bound: {} vs {}",
        big.mean_allreduce_us(),
        small.mean_allreduce_us()
    );
}

#[test]
fn empty_workload_exits_immediately() {
    let out = Experiment::new(2, 4)
        .with_cpus_per_node(4)
        .with_noise(NoiseProfile::dedicated())
        .with_seed(10)
        .run(&mut |_r| Box::new(OpList::new(Vec::new())) as Box<dyn RankWorkload>);
    assert!(out.completed);
    assert!(
        out.wall < SimDur::from_millis(50),
        "empty job took {}",
        out.wall
    );
}
