//! Cross-crate determinism properties of the batch layer.
//!
//! The contract under test: a multi-job schedule — arrivals, placements,
//! gang windows, malleable resizes, completions — produces bit-identical
//! manifests, metrics, and span timelines at any `--sim-threads`, and a
//! policy-comparison campaign produces identical results at any `--jobs`
//! worker count and cache state.

use pa_campaign::{ExecutorConfig, PointResult};
use pa_jobs::{JobRequest, JobsEngine, JobsOutcome, MultiJobSpec, PolicyKind};
use pa_noise::NoiseProfile;
use pa_simkit::SimDur;
use pa_workloads::{batch_point, batch_scenario, multi_job_runner, BatchScale};
use proptest::prelude::*;

/// A small mixed scenario from random draws: a malleable lead job plus a
/// rigid stream with sorted (hence valid) submission times.
fn random_scenario(arrivals: &[(u64, u32, u32)]) -> MultiJobSpec {
    let mut jobs = vec![JobRequest {
        iters_per_chunk: 3,
        work_per_iter: SimDur::from_micros(200),
        estimate: SimDur::from_millis(8),
        ..JobRequest::malleable("m", SimDur::ZERO, 2, 1, 4, 3)
    }];
    let mut sorted = arrivals.to_vec();
    sorted.sort();
    for (i, &(submit_ms, width, chunks)) in sorted.iter().enumerate() {
        jobs.push(JobRequest {
            iters_per_chunk: 3,
            work_per_iter: SimDur::from_micros(150),
            chunks,
            estimate: SimDur::from_millis(4),
            ..JobRequest::rigid(format!("r{i}"), SimDur::from_millis(submit_ms), width)
        });
    }
    MultiJobSpec {
        nodes: 4,
        cpus_per_node: 2,
        quantum: SimDur::from_millis(2),
        gang_period: SimDur::from_millis(1),
        jobs,
        ..MultiJobSpec::default()
    }
}

fn assert_same_history(base: &JobsOutcome, other: &JobsOutcome, what: &str) {
    assert_eq!(
        base.manifest_json(),
        other.manifest_json(),
        "manifest diverged: {what}"
    );
    assert_eq!(
        base.metrics.snapshot_json(),
        other.metrics.snapshot_json(),
        "metrics diverged: {what}"
    );
    assert_eq!(
        base.spans.to_chrome_trace(),
        other.spans.to_chrome_trace(),
        "spans diverged: {what}"
    );
}

proptest! {
    /// Any random multi-job schedule, any policy: the full history is
    /// invariant under the engine's worker thread count.
    #[test]
    fn multi_job_history_is_thread_count_invariant(
        arrivals in prop::collection::vec((0u64..6, 1u32..=3, 1u32..=2), 1..3),
        policy_idx in 0usize..4,
        seed in 0u64..1_000,
    ) {
        let spec = random_scenario(&arrivals);
        let policy = PolicyKind::ALL[policy_idx];
        let run = |threads: usize| {
            JobsEngine::new(spec.clone(), policy)
                .with_seed(seed)
                .with_sim_threads(threads)
                .run()
        };
        let base = run(1);
        prop_assert!(base.completed, "{} left the queue undrained", policy.name());
        for threads in [2usize, 4] {
            let out = run(threads);
            prop_assert_eq!(
                base.manifest_json(),
                out.manifest_json(),
                "manifest diverged at {} sim-threads under {}",
                threads,
                policy.name()
            );
            prop_assert_eq!(
                base.metrics.snapshot_json(),
                out.metrics.snapshot_json(),
                "metrics diverged at {} sim-threads under {}",
                threads,
                policy.name()
            );
            prop_assert_eq!(
                base.spans.to_chrome_trace(),
                out.spans.to_chrome_trace(),
                "spans diverged at {} sim-threads under {}",
                threads,
                policy.name()
            );
        }
    }
}

/// The standard quick scenario under equipartition resizes in both
/// directions, and the whole history (including those resizes) is
/// identical at 1/2/4 engine threads.
#[test]
fn malleable_resize_history_is_thread_count_invariant() {
    let scenario = batch_scenario(BatchScale::Quick);
    let run = |threads: usize| {
        JobsEngine::new(scenario.clone(), PolicyKind::EquiPartition)
            .with_seed(42)
            .with_sim_threads(threads)
            .with_noise(NoiseProfile::production())
            .with_link_bandwidth(Some(350e6))
            .run()
    };
    let base = run(1);
    assert!(base.completed);
    let m = &base.jobs[0];
    assert!(
        m.grows > 0 && m.shrinks > 0,
        "the scenario must exercise a malleable grow AND shrink, widths = {:?}",
        m.widths
    );
    for threads in [2usize, 4] {
        assert_same_history(&base, &run(threads), &format!("{threads} sim-threads"));
    }
}

/// The policy-comparison campaign returns identical results at any
/// `--jobs` worker count (cache disabled, so every point runs fresh).
#[test]
fn campaign_results_are_job_count_invariant() {
    let scenario = batch_scenario(BatchScale::Quick);
    let noise = NoiseProfile::production();
    let specs: Vec<_> = PolicyKind::ALL
        .iter()
        .map(|&p| batch_point(&scenario, p, 42, Some(350e6), &noise))
        .collect();
    let run = |jobs: usize| -> Vec<PointResult> {
        pa_campaign::run_campaign(
            &specs,
            &ExecutorConfig::serial("jobs-invariance").with_jobs(jobs),
            multi_job_runner,
        )
        .results
    };
    let base = run(1);
    assert_eq!(base, run(4), "campaign results diverged at --jobs 4");
    let equi = &base[3];
    assert!(equi.completed);
    assert!(
        equi.extra["jobs.grows"] >= 1.0 && equi.extra["jobs.shrinks"] >= 1.0,
        "equipartition point must resize both ways: {:?}",
        equi.extra
    );
}
