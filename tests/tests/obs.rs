//! Integration tests for the observability layer (`pa-obs` + the
//! `pa_core::observe` fold): registry determinism across reruns and
//! worker counts, histogram bucket semantics, span nesting and track
//! assignment, and Chrome trace JSON round-tripping through the
//! serde_json shim.

use pa_campaign::{run_campaign, ExecutorConfig, PointResult};
use pa_core::{metrics_of, timeline_of, CoschedSetup, Experiment};
use pa_mpi::{MpiOp, OpList, RankWorkload};
use pa_obs::{Histogram, MetricsRegistry, SpanTimeline};
use pa_simkit::SimTime;
use pa_workloads::{run_point, ScalingConfig};

fn observed_run(seed: u64) -> pa_core::RunOutput {
    // Long enough (~tens of ms simulated) that ticks fire and the
    // seed-dependent noise actually lands inside the window.
    let mut wl = |_rank: u32| -> Box<dyn RankWorkload> {
        Box::new(OpList::new(vec![MpiOp::Allreduce { bytes: 8 }; 256]))
    };
    Experiment::new(2, 4)
        .with_cpus_per_node(4)
        .with_cosched(CoschedSetup::default())
        .with_trace_node(0)
        .with_seed(seed)
        .run(&mut wl)
}

#[test]
fn same_seed_gives_byte_identical_snapshot() {
    let a = metrics_of(&observed_run(31)).snapshot_json();
    let b = metrics_of(&observed_run(31)).snapshot_json();
    assert_eq!(a, b, "snapshot must be byte-identical for one seed");
    let c = metrics_of(&observed_run(32)).snapshot_json();
    assert_ne!(a, c, "different seed should change the snapshot");
}

#[test]
fn campaign_metrics_identical_at_any_job_count() {
    // The determinism contract extends through the worker pool: fold the
    // per-point results from serial and 4-way executions into registries
    // and require byte-identical snapshots.
    let mut cfg = ScalingConfig::fig3(true);
    cfg.node_counts = vec![1, 2];
    cfg.allreduces = 48;
    cfg.seeds = vec![21, 22];
    let fold = |results: &[PointResult]| {
        let mut reg = MetricsRegistry::new();
        for r in results {
            reg.inc("campaign.sim_events", r.events);
            reg.inc("campaign.completed", u64::from(r.completed));
        }
        reg.snapshot_json()
    };
    let runner = |spec: &_| PointResult::from_run(&run_point(spec));
    let serial = run_campaign(&cfg.points(), &ExecutorConfig::serial("obs"), runner);
    let parallel = run_campaign(
        &cfg.points(),
        &ExecutorConfig::serial("obs").with_jobs(4),
        runner,
    );
    assert_eq!(fold(&serial.results), fold(&parallel.results));
}

#[test]
fn histogram_bucket_edges_are_inclusive_upper_bounds() {
    let mut h = Histogram::new(&[10, 100, 1000]);
    for v in [0, 10, 11, 100, 999, 1000, 1001, u64::MAX] {
        h.record(v);
    }
    // Buckets: <=10, <=100, <=1000, overflow.
    assert_eq!(h.counts(), &[2, 2, 2, 2]);
    assert_eq!(h.count(), 8);
    assert_eq!(h.min(), Some(0));
    assert_eq!(h.max(), Some(u64::MAX));
}

#[test]
fn span_nesting_and_track_assignment() {
    let mut tl = SpanTimeline::new();
    let t = SimTime::from_micros;
    // Nested spans on one track; an independent span on another track
    // and another process must not interfere.
    tl.begin(0, 1, "outer", t(10));
    tl.begin(0, 1, "inner", t(20));
    assert_eq!(tl.depth(0, 1), 2);
    tl.begin(0, 2, "other-track", t(15));
    tl.begin(7, 1, "other-node", t(15));
    assert_eq!(tl.depth(0, 2), 1);
    assert_eq!(tl.depth(7, 1), 1);
    assert_eq!(tl.end(0, 1, t(30)).as_deref(), Some("inner"));
    assert_eq!(tl.end(0, 1, t(40)).as_deref(), Some("outer"));
    assert_eq!(tl.depth(0, 1), 0);
    // Unmatched end: rejected, not recorded.
    assert_eq!(tl.end(0, 1, t(50)), None);
}

#[test]
fn chrome_trace_round_trips_through_serde_json() {
    let mut tl = SpanTimeline::new();
    tl.name_process(3, "node3");
    tl.name_track(3, 0, "cpu0");
    tl.begin(3, 0, "mpi_rank_0", SimTime::from_micros(5));
    tl.instant(3, 0, "tick", SimTime::from_micros(7));
    tl.end(3, 0, SimTime::from_micros(9));
    tl.complete(
        3,
        1,
        "coll#1",
        SimTime::from_micros(5),
        pa_simkit::SimDur::from_micros(3),
    );
    let json = tl.to_chrome_trace();
    let v = serde_json::parse(&json).expect("chrome trace parses");
    let top = v.as_map().expect("top-level object");
    let events = serde::value::get(top, "traceEvents")
        .and_then(|e| e.as_seq())
        .expect("traceEvents seq");
    // 3 metadata (named process + named track 0 + fallback name for the
    // unnamed track 1) + B + i + E + X.
    assert_eq!(events.len(), 7);
    for ev in events {
        let m = ev.as_map().expect("event object");
        for key in ["ph", "pid", "tid"] {
            assert!(serde::value::get(m, key).is_some(), "missing {key}");
        }
    }
    // Round-trip: parse -> serialize -> parse gives the same value.
    let re = serde_json::parse(&v.to_json_string()).expect("reparse");
    assert_eq!(v, re);
}

#[test]
fn fig4_style_run_yields_valid_artifacts() {
    let out = observed_run(33);
    let reg = metrics_of(&out);
    assert!(serde_json::parse(&reg.snapshot_json()).is_ok());
    let tl = timeline_of(&out, 0);
    assert!(!tl.is_empty());
    assert!(serde_json::parse(&tl.to_chrome_trace()).is_ok());
}
