//! Property-based tests over the stack's core invariants (proptest).

use pa_core::{metrics_of, AdminTable, CoschedParams, CoschedSetup, Experiment, PriorityRecord};
use pa_kernel::{ClockModel, Prio};
use pa_mpi::coll::{
    binomial_allreduce, dissemination_barrier, recursive_doubling_allreduce, ring_allgather,
    CollStep,
};
use pa_mpi::{MpiOp, OpList, RankWorkload};
use pa_simkit::{EventQueue, SimDur, SimTime, Summary};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet, VecDeque};

// ---------------------------------------------------------------------
// Collective schedules: deadlock freedom + full contribution, any size.
// ---------------------------------------------------------------------

/// Abstract executor: runs all ranks' schedules with in-order semantics
/// and unlimited buffering; returns per-rank contribution sets, or None
/// on deadlock.
fn simulate(schedules: &[Vec<CollStep>]) -> Option<Vec<HashSet<u32>>> {
    let n = schedules.len();
    let mut values: Vec<HashSet<u32>> = (0..n as u32).map(|r| HashSet::from([r])).collect();
    let mut pc = vec![0usize; n];
    let mut in_flight: HashMap<(u32, u32, u16), VecDeque<HashSet<u32>>> = HashMap::new();
    loop {
        let mut progressed = false;
        for r in 0..n {
            while pc[r] < schedules[r].len() {
                match schedules[r][pc[r]] {
                    CollStep::Send { peer, phase } => {
                        let v = values[r].clone();
                        in_flight
                            .entry((r as u32, peer, phase))
                            .or_default()
                            .push_back(v);
                        pc[r] += 1;
                        progressed = true;
                    }
                    CollStep::Recv {
                        peer,
                        phase,
                        reduce,
                    } => {
                        let key = (peer, r as u32, phase);
                        let Some(q) = in_flight.get_mut(&key) else {
                            break;
                        };
                        let Some(v) = q.pop_front() else { break };
                        if reduce {
                            values[r].extend(v);
                        } else {
                            values[r] = v;
                        }
                        pc[r] += 1;
                        progressed = true;
                    }
                }
            }
        }
        if pc.iter().enumerate().all(|(r, &p)| p == schedules[r].len()) {
            return Some(values);
        }
        if !progressed {
            return None;
        }
    }
}

proptest! {
    #[test]
    fn binomial_allreduce_is_correct_for_any_size(n in 1u32..260) {
        let schedules: Vec<_> = (0..n).map(|r| binomial_allreduce(r, n)).collect();
        let result = simulate(&schedules).expect("deadlock");
        let full: HashSet<u32> = (0..n).collect();
        for v in result {
            prop_assert_eq!(&v, &full);
        }
    }

    #[test]
    fn recursive_doubling_is_correct_for_any_size(n in 1u32..260) {
        let schedules: Vec<_> = (0..n).map(|r| recursive_doubling_allreduce(r, n)).collect();
        let result = simulate(&schedules).expect("deadlock");
        let full: HashSet<u32> = (0..n).collect();
        for v in result {
            prop_assert_eq!(&v, &full);
        }
    }

    #[test]
    fn barrier_and_allgather_complete(n in 1u32..160) {
        let b: Vec<_> = (0..n).map(|r| dissemination_barrier(r, n)).collect();
        prop_assert!(simulate(&b).is_some(), "barrier deadlocked at n={}", n);
        let g: Vec<_> = (0..n).map(|r| ring_allgather(r, n)).collect();
        let result = simulate(&g).expect("allgather deadlocked");
        let full: HashSet<u32> = (0..n).collect();
        for v in result {
            prop_assert_eq!(&v, &full);
        }
    }
}

// ---------------------------------------------------------------------
// Event queue: total order, cancellation safety.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn event_queue_pops_in_nondecreasing_time(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0usize;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    #[test]
    fn cancelled_events_never_fire(
        times in prop::collection::vec(0u64..1_000_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_nanos(t), i))
            .collect();
        let mut cancelled = HashSet::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                q.cancel(*id);
                cancelled.insert(i);
            }
        }
        let mut fired = HashSet::new();
        while let Some((_, v)) = q.pop() {
            fired.insert(v);
        }
        prop_assert!(fired.is_disjoint(&cancelled));
        prop_assert_eq!(fired.len() + cancelled.len(), times.len());
    }
}

// ---------------------------------------------------------------------
// Time and clock arithmetic.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn align_up_lands_on_boundary_at_or_after(
        t in 0u64..u64::MAX / 4,
        period in 1u64..1_000_000_000,
        phase in 0u64..1_000_000_000,
    ) {
        let p = SimDur::from_nanos(period);
        let ph = SimDur::from_nanos(phase);
        let aligned = SimTime::from_nanos(t).align_up(p, ph);
        prop_assert!(aligned >= SimTime::from_nanos(t));
        prop_assert_eq!((aligned.nanos() + period - phase % period) % period, 0);
        prop_assert!(aligned.nanos() - t < period);
    }

    #[test]
    fn clock_roundtrip(offset in 0u64..1_000_000_000, t in 0u64..u64::MAX / 4) {
        let c = ClockModel::with_offset(SimDur::from_nanos(offset));
        let g = SimTime::from_nanos(t);
        prop_assert_eq!(c.to_global(c.to_local(g)), g);
    }
}

// ---------------------------------------------------------------------
// Statistics.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn summary_orders_its_statistics(xs in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let s = Summary::of(&xs);
        prop_assert!(s.min <= s.median + 1e-9);
        prop_assert!(s.median <= s.p90 + 1e-9);
        prop_assert!(s.p90 <= s.p99 + 1e-9);
        prop_assert!(s.p99 <= s.max + 1e-9);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.stddev >= 0.0);
    }
}

// ---------------------------------------------------------------------
// Co-scheduler window arithmetic.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn next_edge_is_future_and_within_period(
        t in 0u64..100_000_000_000u64,
        period_ms in 1u64..20_000,
        duty_pct in 0u32..=100,
    ) {
        let mut p = CoschedParams::benchmark();
        p.period = SimDur::from_millis(period_ms);
        p.duty = f64::from(duty_pct) / 100.0;
        let now = SimTime::from_nanos(t);
        let edge = p.next_edge(now);
        prop_assert!(edge > now, "edge {} not after {}", edge, now);
        prop_assert!(edge - now <= p.period);
        // The phase flips across (or the window repeats at) the edge.
        let before = p.in_favored(edge - SimDur::from_nanos(1));
        let after = p.in_favored(edge);
        if p.duty > 0.0 && p.duty < 1.0 {
            prop_assert_ne!(before, after, "no flip at {}", edge);
        }
    }
}

// ---------------------------------------------------------------------
// Sharded cluster engine: the parallel path must replay the serial
// history exactly — metrics snapshot and per-node trace buffers both.
// ---------------------------------------------------------------------

/// Run one experiment and fingerprint everything observable: the full
/// canonical metrics snapshot plus every traced node's event buffer.
fn engine_fingerprint(
    nodes: u32,
    tasks: u32,
    seed: u64,
    cosched: bool,
    bytes: u32,
    link_bw: Option<f64>,
    threads: usize,
) -> (String, Vec<pa_trace::TraceEvent>) {
    let mut wl = |_rank: u32| -> Box<dyn RankWorkload> {
        Box::new(OpList::new(vec![MpiOp::Allreduce { bytes }; 24]))
    };
    let mut e = Experiment::new(nodes, tasks)
        .with_cpus_per_node(4)
        .with_trace_node(0)
        .with_seed(seed)
        .with_link_bandwidth(link_bw)
        .with_sim_threads(threads);
    if cosched {
        e = e.with_cosched(CoschedSetup::default());
    }
    let out = e.run(&mut wl);
    let trace: Vec<pa_trace::TraceEvent> = out.sim.kernel(0).trace().events().copied().collect();
    (metrics_of(&out).snapshot_json(), trace)
}

proptest! {
    #[test]
    fn sharded_engine_replays_serial_history(
        nodes in 2u32..5,
        tasks in 1u32..3,
        seed in 0u64..10_000,
        cosched in any::<bool>(),
        bytes in 8u32..4096,
        // Link capacity from "so tight every message queues" to
        // "effectively free", plus the unlimited legacy mode.
        link_bw in (any::<bool>(), 1e6f64..1e9).prop_map(|(limited, bw)| limited.then_some(bw)),
    ) {
        let serial = engine_fingerprint(nodes, tasks, seed, cosched, bytes, link_bw, 1);
        for threads in [2usize, 4] {
            let sharded = engine_fingerprint(nodes, tasks, seed, cosched, bytes, link_bw, threads);
            prop_assert_eq!(
                &serial.0, &sharded.0,
                "metrics diverge at {} threads (nodes={}, seed={}, link_bw={:?})",
                threads, nodes, seed, link_bw
            );
            prop_assert_eq!(
                &serial.1, &sharded.1,
                "trace diverges at {} threads (nodes={}, seed={}, link_bw={:?})",
                threads, nodes, seed, link_bw
            );
        }
    }
}

// ---------------------------------------------------------------------
// Checkpoint/restore: resuming from a mid-run checkpoint reproduces the
// uninterrupted run bit for bit, at any engine thread count. The
// checkpoint interval is random, so across cases the restore point lands
// on arbitrary window barriers.
// ---------------------------------------------------------------------

/// Everything observable about one run that must survive a restore:
/// final clock, event count, completion, the exact mean, and node 0's
/// full trace history.
type RunPrint = (pa_simkit::SimDur, u64, bool, u64, Vec<pa_trace::TraceEvent>);

fn run_print(out: &pa_core::RunOutput) -> RunPrint {
    (
        out.wall,
        out.events,
        out.completed,
        out.mean_allreduce_us().to_bits(),
        out.sim.kernel(0).trace().events().copied().collect(),
    )
}

proptest! {
    #[test]
    fn restore_at_any_barrier_is_bit_identical(
        nodes in 2u32..5,
        tasks in 1u32..3,
        seed in 0u64..10_000,
        cosched in any::<bool>(),
        every_us in 50u64..400,
    ) {
        let base = || {
            let mut e = Experiment::new(nodes, tasks)
                .with_cpus_per_node(4)
                .with_trace_node(0)
                .with_seed(seed);
            if cosched {
                e = e.with_cosched(CoschedSetup::default());
            }
            e
        };
        let wl = || {
            |_rank: u32| -> Box<dyn RankWorkload> {
                Box::new(OpList::new(vec![MpiOp::Allreduce { bytes: 64 }; 24]))
            }
        };
        let path = std::env::temp_dir().join(format!(
            "pa-prop-ckpt-{}-{nodes}-{tasks}-{seed}-{every_us}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);

        // Uninterrupted reference, then the same run writing periodic
        // checkpoints — which must not perturb anything observable.
        let want = run_print(&base().run(&mut wl()));
        let ckpt = base()
            .with_checkpoint_every(SimDur::from_micros(every_us), &path)
            .run(&mut wl());
        prop_assert_eq!(&run_print(&ckpt), &want, "checkpointing perturbed the run");

        // Resume from the last barrier checkpoint at several thread
        // counts; every resumed tail must land on the identical history.
        if ckpt.sim.checkpoints_written() > 0 {
            for threads in [1usize, 2, 4] {
                let resumed = base()
                    .with_sim_threads(threads)
                    .with_restore_from(&path)
                    .run(&mut wl());
                prop_assert_eq!(resumed.sim.checkpoint_restores(), 1);
                prop_assert_eq!(
                    &run_print(&resumed), &want,
                    "restore diverges at {} threads (nodes={}, tasks={}, seed={}, every={}µs)",
                    threads, nodes, tasks, seed, every_us
                );
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}

// ---------------------------------------------------------------------
// Admin table round trip.
// ---------------------------------------------------------------------

fn arb_record() -> impl Strategy<Value = PriorityRecord> {
    (
        "[A-Z]{2,8}",
        0u32..65_536,
        1u8..100,
        1u8..120,
        1u64..3_600,
        0u32..=100,
    )
        .prop_filter_map(
            "favored must beat unfavored",
            |(class, uid, f, u, per, duty)| {
                if f >= u {
                    return None;
                }
                let mut params = CoschedParams::benchmark();
                params.favored = Prio(f);
                params.unfavored = Prio(u);
                params.period = SimDur::from_secs(per);
                params.duty = f64::from(duty) / 100.0;
                Some(PriorityRecord { class, uid, params })
            },
        )
}

proptest! {
    #[test]
    fn admin_table_render_parse_roundtrip(records in prop::collection::vec(arb_record(), 0..8)) {
        let mut t = AdminTable::new();
        for r in records {
            t.add(r);
        }
        let parsed = AdminTable::parse(&t.render()).expect("rendered table parses");
        prop_assert_eq!(parsed.render(), t.render());
    }
}
