//! Property-based tests over the stack's core invariants (proptest).

use pa_core::{metrics_of, AdminTable, CoschedParams, CoschedSetup, Experiment, PriorityRecord};
use pa_kernel::{ClockModel, DispatcherKind, Prio};
use pa_mpi::coll::{
    binomial_allreduce, dissemination_barrier, recursive_doubling_allreduce, ring_allgather,
    CollStep,
};
use pa_mpi::{MpiOp, OpList, RankWorkload};
use pa_simkit::{EventQueue, SimDur, SimTime, Summary};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet, VecDeque};

// ---------------------------------------------------------------------
// Collective schedules: deadlock freedom + full contribution, any size.
// ---------------------------------------------------------------------

/// Abstract executor: runs all ranks' schedules with in-order semantics
/// and unlimited buffering; returns per-rank contribution sets, or None
/// on deadlock.
fn simulate(schedules: &[Vec<CollStep>]) -> Option<Vec<HashSet<u32>>> {
    let n = schedules.len();
    let mut values: Vec<HashSet<u32>> = (0..n as u32).map(|r| HashSet::from([r])).collect();
    let mut pc = vec![0usize; n];
    let mut in_flight: HashMap<(u32, u32, u16), VecDeque<HashSet<u32>>> = HashMap::new();
    loop {
        let mut progressed = false;
        for r in 0..n {
            while pc[r] < schedules[r].len() {
                match schedules[r][pc[r]] {
                    CollStep::Send { peer, phase } => {
                        let v = values[r].clone();
                        in_flight
                            .entry((r as u32, peer, phase))
                            .or_default()
                            .push_back(v);
                        pc[r] += 1;
                        progressed = true;
                    }
                    CollStep::Recv {
                        peer,
                        phase,
                        reduce,
                    } => {
                        let key = (peer, r as u32, phase);
                        let Some(q) = in_flight.get_mut(&key) else {
                            break;
                        };
                        let Some(v) = q.pop_front() else { break };
                        if reduce {
                            values[r].extend(v);
                        } else {
                            values[r] = v;
                        }
                        pc[r] += 1;
                        progressed = true;
                    }
                }
            }
        }
        if pc.iter().enumerate().all(|(r, &p)| p == schedules[r].len()) {
            return Some(values);
        }
        if !progressed {
            return None;
        }
    }
}

proptest! {
    #[test]
    fn binomial_allreduce_is_correct_for_any_size(n in 1u32..260) {
        let schedules: Vec<_> = (0..n).map(|r| binomial_allreduce(r, n)).collect();
        let result = simulate(&schedules).expect("deadlock");
        let full: HashSet<u32> = (0..n).collect();
        for v in result {
            prop_assert_eq!(&v, &full);
        }
    }

    #[test]
    fn recursive_doubling_is_correct_for_any_size(n in 1u32..260) {
        let schedules: Vec<_> = (0..n).map(|r| recursive_doubling_allreduce(r, n)).collect();
        let result = simulate(&schedules).expect("deadlock");
        let full: HashSet<u32> = (0..n).collect();
        for v in result {
            prop_assert_eq!(&v, &full);
        }
    }

    #[test]
    fn barrier_and_allgather_complete(n in 1u32..160) {
        let b: Vec<_> = (0..n).map(|r| dissemination_barrier(r, n)).collect();
        prop_assert!(simulate(&b).is_some(), "barrier deadlocked at n={}", n);
        let g: Vec<_> = (0..n).map(|r| ring_allgather(r, n)).collect();
        let result = simulate(&g).expect("allgather deadlocked");
        let full: HashSet<u32> = (0..n).collect();
        for v in result {
            prop_assert_eq!(&v, &full);
        }
    }
}

// ---------------------------------------------------------------------
// Event queue: total order, cancellation safety.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn event_queue_pops_in_nondecreasing_time(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0usize;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    #[test]
    fn cancelled_events_never_fire(
        times in prop::collection::vec(0u64..1_000_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_nanos(t), i))
            .collect();
        let mut cancelled = HashSet::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                q.cancel(*id);
                cancelled.insert(i);
            }
        }
        let mut fired = HashSet::new();
        while let Some((_, v)) = q.pop() {
            fired.insert(v);
        }
        prop_assert!(fired.is_disjoint(&cancelled));
        prop_assert_eq!(fired.len() + cancelled.len(), times.len());
    }
}

// ---------------------------------------------------------------------
// Event queue vs the old heap: the indexed queue and the lazy-tombstone
// fallback must both replay the exact pop order and core stats of the
// structure they replaced (a plain binary heap + pending set) under any
// interleaving of schedule/cancel/advance_to/pop.
// ---------------------------------------------------------------------

/// Reference model of the pre-overhaul queue: ids are handed out in
/// schedule order, pops come in `(time, id)` order, and a cancelled id
/// simply never fires. Any correct priority structure must agree with
/// this observable behavior exactly.
struct ModelQueue {
    now: u64,
    next_id: u64,
    live: Vec<(u64, u64, usize)>, // (time, id, value)
    scheduled: u64,
    popped: u64,
    cancelled: u64,
}

impl ModelQueue {
    fn new() -> ModelQueue {
        ModelQueue {
            now: 0,
            next_id: 0,
            live: Vec::new(),
            scheduled: 0,
            popped: 0,
            cancelled: 0,
        }
    }
    fn schedule(&mut self, t: u64, value: usize) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.scheduled += 1;
        self.live.push((t, id, value));
        id
    }
    fn cancel(&mut self, id: u64) {
        if let Some(i) = self.live.iter().position(|&(_, lid, _)| lid == id) {
            self.live.swap_remove(i);
            self.cancelled += 1;
        }
    }
    fn pop(&mut self) -> Option<(u64, usize)> {
        let i = (0..self.live.len()).min_by_key(|&i| (self.live[i].0, self.live[i].1))?;
        let (t, _, v) = self.live.swap_remove(i);
        self.now = self.now.max(t);
        self.popped += 1;
        Some((t, v))
    }
    fn peek_time(&self) -> Option<u64> {
        self.live.iter().map(|&(t, _, _)| t).min()
    }
}

/// One step of the interleaving: `kind` selects the operation, the other
/// fields parameterize it.
#[derive(Debug, Clone)]
struct QueueOp {
    kind: u8,
    delta: u64,
    pick: usize,
}

fn arb_queue_op() -> impl Strategy<Value = QueueOp> {
    (0u8..10, 1u64..50_000, any::<usize>()).prop_map(|(kind, delta, pick)| QueueOp {
        kind,
        delta,
        pick,
    })
}

fn check_queue_against_model(ops: &[QueueOp], lazy: bool) -> Result<(), TestCaseError> {
    let mut q = if lazy {
        EventQueue::<usize>::new_lazy()
    } else {
        EventQueue::<usize>::new()
    };
    let mut model = ModelQueue::new();
    // Parallel id registries for the same logical live entry.
    let mut ids: Vec<(pa_simkit::EventId, u64)> = Vec::new();
    for (step, op) in ops.iter().enumerate() {
        match op.kind {
            // schedule (weighted heaviest)
            0..=4 => {
                let t = model.now + op.delta;
                let qid = q.schedule(SimTime::from_nanos(t), step);
                let mid = model.schedule(t, step);
                ids.push((qid, mid));
            }
            // cancel a random live entry
            5..=6 => {
                if !ids.is_empty() {
                    let (qid, mid) = ids.swap_remove(op.pick % ids.len());
                    q.cancel(qid);
                    model.cancel(mid);
                }
            }
            // advance the clock into the pending future
            7 => {
                let target = model
                    .peek_time()
                    .map_or(model.now, |t| t.min(model.now + op.delta));
                let target = target.max(model.now);
                q.advance_to(SimTime::from_nanos(target));
                model.now = target;
            }
            // pop
            _ => {
                let got = q.pop();
                let want = model.pop();
                prop_assert_eq!(
                    got.map(|(t, v)| (t.nanos(), v)),
                    want,
                    "pop diverged at step {} (lazy={})",
                    step,
                    lazy
                );
                // The popped entry's id pair stays in `ids`; a later
                // cancel picking it is a no-op in both queue and model,
                // so the registries remain in lockstep.
            }
        }
        prop_assert_eq!(
            q.peek_time().map(SimTime::nanos),
            model.peek_time(),
            "peek diverged at step {} (lazy={})",
            step,
            lazy
        );
        let live = model.live.len();
        prop_assert!(
            q.stats().tombstones as usize <= live.max(1),
            "tombstones exceed live entries at step {}",
            step
        );
        prop_assert!(
            q.resident_len() <= 2 * live + 1,
            "resident {} exceeds 2*{}+1 at step {}",
            q.resident_len(),
            live,
            step
        );
    }
    // Drain both to the end: full remaining order must agree.
    loop {
        let got = q.pop();
        let want = model.pop();
        prop_assert_eq!(got.map(|(t, v)| (t.nanos(), v)), want, "drain diverged");
        if want.is_none() {
            break;
        }
    }
    let s = q.stats();
    prop_assert_eq!(s.scheduled, model.scheduled);
    prop_assert_eq!(s.popped, model.popped);
    prop_assert_eq!(s.cancelled, model.cancelled);
    prop_assert_eq!(s.tombstones, 0, "drained queue still reports tombstones");
    Ok(())
}

proptest! {
    #[test]
    fn indexed_queue_matches_old_heap_model(ops in prop::collection::vec(arb_queue_op(), 1..300)) {
        check_queue_against_model(&ops, false)?;
    }

    #[test]
    fn lazy_queue_matches_old_heap_model(ops in prop::collection::vec(arb_queue_op(), 1..300)) {
        check_queue_against_model(&ops, true)?;
    }

    #[test]
    fn queue_with_live_tombstones_roundtrips_through_checkpoint(
        times in prop::collection::vec(1u64..1_000_000, 2..80),
        cancel_mask in prop::collection::vec(any::<bool>(), 2..80),
    ) {
        // A lazy queue mid-flight: some entries cancelled (tombstones may
        // be resident), then checkpointed via the same live_entries /
        // from_parts path the engine snapshot uses. The restored queue
        // must replay the identical pop sequence, with no tombstones
        // surviving the round trip.
        let mut q = EventQueue::<usize>::new_lazy();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_nanos(t), i))
            .collect();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                q.cancel(*id);
            }
        }
        let entries: Vec<(SimTime, u64, usize)> = q
            .live_entries()
            .into_iter()
            .map(|(t, id, v)| (t, id, *v))
            .collect();
        let mut restored =
            EventQueue::from_parts(q.now(), q.next_id_raw(), q.stats(), entries).unwrap();
        prop_assert_eq!(restored.stats().tombstones, 0);
        loop {
            let want = q.pop();
            let got = restored.pop();
            prop_assert_eq!(got, want, "restored queue diverged");
            if want.is_none() {
                break;
            }
        }
        let (a, b) = (q.stats(), restored.stats());
        prop_assert_eq!(a.scheduled - a.cancelled, b.scheduled - b.cancelled);
        prop_assert_eq!(a.popped, b.popped);
    }
}

// ---------------------------------------------------------------------
// Time and clock arithmetic.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn align_up_lands_on_boundary_at_or_after(
        t in 0u64..u64::MAX / 4,
        period in 1u64..1_000_000_000,
        phase in 0u64..1_000_000_000,
    ) {
        let p = SimDur::from_nanos(period);
        let ph = SimDur::from_nanos(phase);
        let aligned = SimTime::from_nanos(t).align_up(p, ph);
        prop_assert!(aligned >= SimTime::from_nanos(t));
        prop_assert_eq!((aligned.nanos() + period - phase % period) % period, 0);
        prop_assert!(aligned.nanos() - t < period);
    }

    #[test]
    fn clock_roundtrip(offset in 0u64..1_000_000_000, t in 0u64..u64::MAX / 4) {
        let c = ClockModel::with_offset(SimDur::from_nanos(offset));
        let g = SimTime::from_nanos(t);
        prop_assert_eq!(c.to_global(c.to_local(g)), g);
    }
}

// ---------------------------------------------------------------------
// Statistics.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn summary_orders_its_statistics(xs in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let s = Summary::of(&xs);
        prop_assert!(s.min <= s.median + 1e-9);
        prop_assert!(s.median <= s.p90 + 1e-9);
        prop_assert!(s.p90 <= s.p99 + 1e-9);
        prop_assert!(s.p99 <= s.max + 1e-9);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.stddev >= 0.0);
    }
}

// ---------------------------------------------------------------------
// Co-scheduler window arithmetic.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn next_edge_is_future_and_within_period(
        t in 0u64..100_000_000_000u64,
        period_ms in 1u64..20_000,
        duty_pct in 0u32..=100,
    ) {
        let mut p = CoschedParams::benchmark();
        p.period = SimDur::from_millis(period_ms);
        p.duty = f64::from(duty_pct) / 100.0;
        let now = SimTime::from_nanos(t);
        let edge = p.next_edge(now);
        prop_assert!(edge > now, "edge {} not after {}", edge, now);
        prop_assert!(edge - now <= p.period);
        // The phase flips across (or the window repeats at) the edge.
        let before = p.in_favored(edge - SimDur::from_nanos(1));
        let after = p.in_favored(edge);
        if p.duty > 0.0 && p.duty < 1.0 {
            prop_assert_ne!(before, after, "no flip at {}", edge);
        }
    }
}

// ---------------------------------------------------------------------
// Sharded cluster engine: the parallel path must replay the serial
// history exactly — metrics snapshot and per-node trace buffers both.
// ---------------------------------------------------------------------

/// Run one experiment and fingerprint everything observable: the full
/// canonical metrics snapshot plus every traced node's event buffer.
fn engine_fingerprint(
    nodes: u32,
    tasks: u32,
    seed: u64,
    cosched: bool,
    bytes: u32,
    link_bw: Option<f64>,
    threads: usize,
) -> (String, Vec<pa_trace::TraceEvent>) {
    let mut wl = |_rank: u32| -> Box<dyn RankWorkload> {
        Box::new(OpList::new(vec![MpiOp::Allreduce { bytes }; 24]))
    };
    let mut e = Experiment::new(nodes, tasks)
        .with_cpus_per_node(4)
        .with_trace_node(0)
        .with_seed(seed)
        .with_link_bandwidth(link_bw)
        .with_sim_threads(threads);
    if cosched {
        e = e.with_cosched(CoschedSetup::default());
    }
    let out = e.run(&mut wl);
    let trace: Vec<pa_trace::TraceEvent> = out.sim.kernel(0).trace().events().copied().collect();
    (metrics_of(&out).snapshot_json(), trace)
}

proptest! {
    #[test]
    fn sharded_engine_replays_serial_history(
        nodes in 2u32..5,
        tasks in 1u32..3,
        seed in 0u64..10_000,
        cosched in any::<bool>(),
        bytes in 8u32..4096,
        // Link capacity from "so tight every message queues" to
        // "effectively free", plus the unlimited legacy mode.
        link_bw in (any::<bool>(), 1e6f64..1e9).prop_map(|(limited, bw)| limited.then_some(bw)),
    ) {
        let serial = engine_fingerprint(nodes, tasks, seed, cosched, bytes, link_bw, 1);
        for threads in [2usize, 4] {
            let sharded = engine_fingerprint(nodes, tasks, seed, cosched, bytes, link_bw, threads);
            prop_assert_eq!(
                &serial.0, &sharded.0,
                "metrics diverge at {} threads (nodes={}, seed={}, link_bw={:?})",
                threads, nodes, seed, link_bw
            );
            prop_assert_eq!(
                &serial.1, &sharded.1,
                "trace diverges at {} threads (nodes={}, seed={}, link_bw={:?})",
                threads, nodes, seed, link_bw
            );
        }
    }
}

/// Like [`engine_fingerprint`], but under an arbitrary dispatcher policy:
/// the sharding proof must hold for CFS and EEVDF exactly as for AIX,
/// since the dispatcher is per-node state that never crosses shards.
fn engine_fingerprint_with_dispatcher(
    nodes: u32,
    tasks: u32,
    seed: u64,
    cosched: bool,
    kind: DispatcherKind,
    threads: usize,
) -> (String, Vec<pa_trace::TraceEvent>) {
    let mut wl = |_rank: u32| -> Box<dyn RankWorkload> {
        Box::new(OpList::new(vec![MpiOp::Allreduce { bytes: 256 }; 24]))
    };
    let mut e = Experiment::new(nodes, tasks)
        .with_cpus_per_node(4)
        .with_trace_node(0)
        .with_seed(seed)
        .with_dispatcher(kind)
        .with_sim_threads(threads);
    if cosched {
        e = e.with_cosched(CoschedSetup::default());
    }
    let out = e.run(&mut wl);
    let trace: Vec<pa_trace::TraceEvent> = out.sim.kernel(0).trace().events().copied().collect();
    (metrics_of(&out).snapshot_json(), trace)
}

proptest! {
    #[test]
    fn sharded_engine_replays_serial_history_under_any_dispatcher(
        nodes in 2u32..5,
        tasks in 1u32..3,
        seed in 0u64..10_000,
        cosched in any::<bool>(),
        kind in (0usize..DispatcherKind::ALL.len()).prop_map(|i| DispatcherKind::ALL[i]),
    ) {
        let serial = engine_fingerprint_with_dispatcher(nodes, tasks, seed, cosched, kind, 1);
        for threads in [2usize, 4] {
            let sharded =
                engine_fingerprint_with_dispatcher(nodes, tasks, seed, cosched, kind, threads);
            prop_assert_eq!(
                &serial.0, &sharded.0,
                "metrics diverge at {} threads (dispatcher={}, nodes={}, seed={})",
                threads, kind.as_str(), nodes, seed
            );
            prop_assert_eq!(
                &serial.1, &sharded.1,
                "trace diverges at {} threads (dispatcher={}, nodes={}, seed={})",
                threads, kind.as_str(), nodes, seed
            );
        }
    }
}

/// A fast-cycling co-scheduler over skewed compute keeps every CPU busy
/// while the priority daemon preempts runners mid-segment — each
/// preemption cancels a live `SegEnd` out of the calendar. History must
/// be bit-identical at 1/2/4/8 threads with cancellation on the hot path.
#[test]
fn cancel_heavy_cosched_history_is_identical_at_1_2_4_8_threads() {
    let run = |threads: usize| {
        let mut wl = |rank: u32| -> Box<dyn RankWorkload> {
            let mut ops = Vec::new();
            for i in 0..60u64 {
                let us = 200 + ((u64::from(rank) * 37 + i * 13) % 400);
                ops.push(MpiOp::Compute(SimDur::from_micros(us)));
                if i % 10 == 9 {
                    ops.push(MpiOp::Allreduce { bytes: 256 });
                }
            }
            Box::new(OpList::new(ops))
        };
        let mut setup = CoschedSetup::default();
        setup.params.period = SimDur::from_millis(1);
        setup.params.duty = 0.5;
        let out = Experiment::new(8, 4)
            .with_cpus_per_node(4)
            .with_cosched(setup)
            .with_trace_node(0)
            .with_seed(9)
            .with_sim_threads(threads)
            .run(&mut wl);
        let trace: Vec<pa_trace::TraceEvent> =
            out.sim.kernel(0).trace().events().copied().collect();
        let stats = out.sim.queue_stats();
        (metrics_of(&out).snapshot_json(), trace, stats)
    };
    let serial = run(1);
    assert!(
        serial.2.cancelled > 0,
        "spec produced no cancellations: {:?}",
        serial.2
    );
    let live = serial.2.scheduled - serial.2.popped - serial.2.cancelled;
    assert!(
        serial.2.tombstones <= live.max(1),
        "tombstones unbounded: {:?}",
        serial.2
    );
    for threads in [2usize, 4, 8] {
        let sharded = run(threads);
        assert_eq!(serial.0, sharded.0, "metrics diverge at {threads} threads");
        assert_eq!(serial.1, sharded.1, "trace diverges at {threads} threads");
        assert_eq!(serial.2, sharded.2, "stats diverge at {threads} threads");
    }
}

// ---------------------------------------------------------------------
// Checkpoint/restore: resuming from a mid-run checkpoint reproduces the
// uninterrupted run bit for bit, at any engine thread count. The
// checkpoint interval is random, so across cases the restore point lands
// on arbitrary window barriers.
// ---------------------------------------------------------------------

/// Everything observable about one run that must survive a restore:
/// final clock, event count, completion, the exact mean, and node 0's
/// full trace history.
type RunPrint = (pa_simkit::SimDur, u64, bool, u64, Vec<pa_trace::TraceEvent>);

fn run_print(out: &pa_core::RunOutput) -> RunPrint {
    (
        out.wall,
        out.events,
        out.completed,
        out.mean_allreduce_us().to_bits(),
        out.sim.kernel(0).trace().events().copied().collect(),
    )
}

proptest! {
    #[test]
    fn restore_at_any_barrier_is_bit_identical(
        nodes in 2u32..5,
        tasks in 1u32..3,
        seed in 0u64..10_000,
        cosched in any::<bool>(),
        every_us in 50u64..400,
    ) {
        let base = || {
            let mut e = Experiment::new(nodes, tasks)
                .with_cpus_per_node(4)
                .with_trace_node(0)
                .with_seed(seed);
            if cosched {
                e = e.with_cosched(CoschedSetup::default());
            }
            e
        };
        let wl = || {
            |_rank: u32| -> Box<dyn RankWorkload> {
                Box::new(OpList::new(vec![MpiOp::Allreduce { bytes: 64 }; 24]))
            }
        };
        let path = std::env::temp_dir().join(format!(
            "pa-prop-ckpt-{}-{nodes}-{tasks}-{seed}-{every_us}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);

        // Uninterrupted reference, then the same run writing periodic
        // checkpoints — which must not perturb anything observable.
        let want = run_print(&base().run(&mut wl()));
        let ckpt = base()
            .with_checkpoint_every(SimDur::from_micros(every_us), &path)
            .run(&mut wl());
        prop_assert_eq!(&run_print(&ckpt), &want, "checkpointing perturbed the run");

        // Resume from the last barrier checkpoint at several thread
        // counts; every resumed tail must land on the identical history.
        if ckpt.sim.checkpoints_written() > 0 {
            for threads in [1usize, 2, 4] {
                let resumed = base()
                    .with_sim_threads(threads)
                    .with_restore_from(&path)
                    .run(&mut wl());
                prop_assert_eq!(resumed.sim.checkpoint_restores(), 1);
                prop_assert_eq!(
                    &run_print(&resumed), &want,
                    "restore diverges at {} threads (nodes={}, tasks={}, seed={}, every={}µs)",
                    threads, nodes, tasks, seed, every_us
                );
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}

// ---------------------------------------------------------------------
// Admin table round trip.
// ---------------------------------------------------------------------

fn arb_record() -> impl Strategy<Value = PriorityRecord> {
    (
        "[A-Z]{2,8}",
        0u32..65_536,
        1u8..100,
        1u8..120,
        1u64..3_600,
        0u32..=100,
    )
        .prop_filter_map(
            "favored must beat unfavored",
            |(class, uid, f, u, per, duty)| {
                if f >= u {
                    return None;
                }
                let mut params = CoschedParams::benchmark();
                params.favored = Prio(f);
                params.unfavored = Prio(u);
                params.period = SimDur::from_secs(per);
                params.duty = f64::from(duty) / 100.0;
                Some(PriorityRecord { class, uid, params })
            },
        )
}

proptest! {
    #[test]
    fn admin_table_render_parse_roundtrip(records in prop::collection::vec(arb_record(), 0..8)) {
        let mut t = AdminTable::new();
        for r in records {
            t.add(r);
        }
        let parsed = AdminTable::parse(&t.render()).expect("rendered table parses");
        prop_assert_eq!(parsed.render(), t.render());
    }
}
