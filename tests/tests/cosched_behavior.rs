//! Behavioural tests of the co-scheduler itself, end to end.

use pa_core::{CoschedSetup, Experiment, SchedOptions};
use pa_kernel::Prio;
use pa_mpi::{MpiOp, OpList, RankWorkload};
use pa_noise::NoiseProfile;
use pa_simkit::{SimDur, SimTime};
use pa_trace::HookId;

fn spin_workload(calls: usize) -> impl FnMut(u32) -> Box<dyn RankWorkload> {
    move |_r| Box::new(OpList::new(vec![MpiOp::Allreduce { bytes: 8 }; calls]))
}

/// Times at which a node's co-scheduler applied the unfavored priority.
fn unfavored_times(out: &pa_core::RunOutput, node: u32) -> Vec<SimTime> {
    out.sim
        .kernel(node)
        .trace()
        .events()
        .filter(|e| e.hook == HookId::PrioChange && e.aux == u64::from(Prio::UNFAVORED.0))
        .map(|e| e.time)
        .collect()
}

#[test]
fn clock_sync_aligns_windows_across_nodes() {
    // Run the same configuration with and without the switch-clock sync
    // and compare the first unfavored edges of the two nodes. Gaps are
    // tick-quantized, so the comparison is synced-vs-unsynced rather than
    // against absolute thresholds.
    let gap = |sync: bool| -> u64 {
        let mut setup = CoschedSetup::default();
        setup.params.period = SimDur::from_millis(1_250);
        setup.params.duty = 0.8;
        setup.sync_clocks = sync;
        let mut e = Experiment::new(2, 16)
            .with_kernel(SchedOptions::prototype())
            .with_cosched(setup)
            .with_noise(NoiseProfile::dedicated())
            .with_trace_node(0)
            .with_trace_node(1)
            .with_seed(21)
            .with_horizon(SimDur::from_millis(2_900));
        // Exaggerated skew makes the unsynced misalignment unambiguous
        // despite big-tick quantization of the window edges.
        e.skew_max = SimDur::from_millis(620);
        // The workload only needs to keep the ranks registered and busy
        // past the window edges; a tight allreduce spin would flood the
        // bounded trace ring and evict the very PrioChange events this
        // test inspects, so register with a few collectives and then
        // compute quietly until the horizon.
        let mut make = |_r: u32| -> Box<dyn RankWorkload> {
            let mut ops = vec![MpiOp::Allreduce { bytes: 8 }; 8];
            ops.extend(std::iter::repeat_n(
                MpiOp::Compute(SimDur::from_millis(5)),
                700,
            ));
            Box::new(OpList::new(ops))
        };
        let out = e.run(&mut make);
        let a = unfavored_times(&out, 0);
        let b = unfavored_times(&out, 1);
        assert!(
            !a.is_empty() && !b.is_empty(),
            "no unfavored windows observed"
        );
        a[0].nanos().abs_diff(b[0].nanos())
    };
    let synced = gap(true);
    let unsynced = gap(false);
    // Synced: within one big tick. Unsynced: the difference between the
    // two nodes' boot-skew draws shows through, so the gap must exceed
    // the 25 ms big-tick quantization floor that bounds the synced case.
    assert!(
        synced <= SimDur::from_millis(260).nanos(),
        "synced windows {synced}ns apart"
    );
    assert!(
        unsynced > synced + SimDur::from_millis(25).nanos(),
        "unsynced ({unsynced}ns) should misalign more than synced ({synced}ns)"
    );
}

#[test]
fn detach_restores_base_priority() {
    // A workload that detaches mid-run: the co-scheduler must set the
    // registered tasks back to the base (USER) priority when it sees the
    // request at a window edge.
    let mut make = |_r: u32| -> Box<dyn RankWorkload> {
        let mut ops = vec![MpiOp::Allreduce { bytes: 8 }; 40];
        ops.push(MpiOp::DetachCosched);
        // Enough follow-on work for a window edge to pass.
        for _ in 0..4000 {
            ops.push(MpiOp::Compute(SimDur::from_micros(200)));
        }
        Box::new(OpList::new(ops))
    };
    let mut setup = CoschedSetup::default();
    setup.params.period = SimDur::from_millis(500);
    setup.params.duty = 0.5; // edges at 250ms/500ms: big-tick aligned
    let out = Experiment::new(1, 16)
        .with_kernel(SchedOptions::prototype())
        .with_cosched(setup)
        .with_noise(NoiseProfile::dedicated())
        .with_trace_node(0)
        .with_seed(33)
        .run(&mut make);
    assert!(out.completed);
    let base_applied = out
        .sim
        .kernel(0)
        .trace()
        .events()
        .any(|e| e.hook == HookId::PrioChange && e.aux == u64::from(Prio::USER.0));
    assert!(base_applied, "detach never restored the base priority");
}

#[test]
fn cosched_never_loses_a_registered_task() {
    // All ranks must end at a co-scheduler-managed priority (favored or
    // unfavored), not at their spawn priority.
    let out = Experiment::new(2, 16)
        .with_kernel(SchedOptions::prototype())
        .with_cosched(CoschedSetup::default())
        .with_noise(NoiseProfile::dedicated())
        .with_seed(13)
        .run(&mut spin_workload(2_000));
    assert!(out.completed);
    for ep in &out.job.rank_tids {
        let prio = out.sim.kernel(ep.node).thread_prio(ep.tid);
        assert!(
            prio == Prio::FAVORED || prio == Prio::UNFAVORED,
            "rank on node {} ended at unmanaged priority {prio:?}",
            ep.node
        );
    }
}
