//! Cross-crate integration tests for the PACE reproduction live in
//! `tests/tests/`. This stub library only anchors the package.
