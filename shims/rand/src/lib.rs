//! Offline stand-in for the `rand` crate: just the trait surface the
//! workspace uses (`SeedableRng::seed_from_u64`, `RngExt::random::<f64>`,
//! `RngExt::random_range` over integer ranges). The generator itself
//! lives in the `rand_chacha` stand-in.

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (rand expands it with splitmix64; the
    /// stand-in does the same so nearby seeds decorrelate).
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling helpers, mirroring `rand::Rng` ergonomics.
pub trait RngExt: RngCore + Sized {
    /// A uniformly random value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open). Panics on empty ranges.
    fn random_range<T: UniformRange>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }
}

impl<R: RngCore + Sized> RngExt for R {}

/// Types samplable from the "standard" distribution.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 random mantissa bits over [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Types samplable uniformly from a half-open range.
pub trait UniformRange: Sized {
    /// Draw one value in `range`.
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                // Rejection sampling kills modulo bias.
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let x = rng.next_u64();
                    if x <= zone {
                        return range.start + (x % span) as $t;
                    }
                }
            }
        }
    )*};
}
uniform_uint!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            (self.0 >> 32) as u32
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respected() {
        let mut r = Counter(3);
        for _ in 0..1000 {
            let x = r.random_range(10u64..20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = Counter(1);
        let _ = r.random_range(5u64..5);
    }
}
