//! The self-describing value model the stand-in serializes through.
//!
//! Maps are ordered `Vec`s of `(key, value)` pairs, not hash maps: field
//! order is the derive-declaration order, which makes every serialized
//! form *canonical* — the same struct always renders the same bytes. The
//! campaign cache keys depend on that property.

/// A self-describing value (the JSON data model plus split integers).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also `Option::None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer (kept exact; not routed through f64).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Value>),
    /// An ordered map.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// As u64, if losslessly possible.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// As i64, if losslessly possible.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::UInt(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// As f64 (integers coerce, matching JSON's single number type).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::UInt(n) => Some(*n as f64),
            Value::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// As an ordered map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// As a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// As a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Compact JSON rendering (used for map keys and cache hashing; the
    /// `serde_json` stand-in builds its output on this too).
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        write_json(self, None, 0, &mut out);
        out
    }

    /// Pretty JSON rendering with 2-space indentation (the real
    /// `serde_json::to_string_pretty` layout).
    pub fn to_json_string_pretty(&self) -> String {
        let mut out = String::new();
        write_json(self, Some(2), 0, &mut out);
        out
    }
}

/// Look up a key in an ordered map (derive-generated decoders use this).
pub fn get<'v>(map: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn write_json(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_f64(*x, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(xs) => write_block('[', ']', xs.len(), indent, depth, out, |i, out| {
            write_json(&xs[i], indent, depth + 1, out);
        }),
        Value::Map(m) => write_block('{', '}', m.len(), indent, depth, out, |i, out| {
            write_escaped(&m[i].0, out);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_json(&m[i].1, indent, depth + 1, out);
        }),
    }
}

fn write_block(
    open: char,
    close: char,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    mut item: impl FnMut(usize, &mut String),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(i, out);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_nan() || x.is_infinite() {
        // Real serde_json refuses non-finite floats; rendering null keeps
        // the output parseable, which matters more for a report harness.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Match serde_json: whole floats render with a trailing `.0` so
        // they round-trip as floats.
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&x.to_string());
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Map(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
        ]);
        assert_eq!(v.to_json_string(), r#"{"a":1,"b":[true,null]}"#);
    }

    #[test]
    fn pretty_rendering() {
        let v = Value::Map(vec![("a".into(), Value::Seq(vec![Value::UInt(1)]))]);
        assert_eq!(v.to_json_string_pretty(), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn whole_floats_keep_point_zero() {
        assert_eq!(Value::Float(3.0).to_json_string(), "3.0");
        assert_eq!(Value::Float(3.25).to_json_string(), "3.25");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Value::Str("a\"b\\c\nd".into()).to_json_string(),
            r#""a\"b\\c\nd""#
        );
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Value::Seq(vec![]).to_json_string_pretty(), "[]");
        assert_eq!(Value::Map(vec![]).to_json_string_pretty(), "{}");
    }
}
