//! Offline stand-in for the `serde` crate.
//!
//! This build environment has no access to a crates registry, so the
//! workspace replaces its external dependencies with local stand-ins (see
//! `shims/README.md`). This one keeps serde's *surface* — the
//! `Serialize`/`Deserialize` traits, the derive macros, and the
//! `#[serde(default)]` field attribute — while swapping the internals for
//! a much smaller design: serialization goes through a self-describing
//! [`value::Value`] tree instead of the visitor machinery. Everything the
//! workspace needs (derived impls on plain structs and enums, JSON
//! round-trips via the `serde_json` stand-in) behaves like the real
//! thing; exotic serde features are intentionally absent.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

use value::Value;

/// Serialization error (also used by the `serde_json` stand-in).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// A "expected X while decoding Y" error.
    pub fn expected(what: &str, context: &str) -> Error {
        Error(format!("expected {what} while decoding {context}"))
    }

    /// A missing-field error.
    pub fn missing(field: &str, context: &str) -> Error {
        Error(format!("missing field `{field}` in {context}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself as a [`Value`] tree.
pub trait Serialize {
    /// Convert to the self-describing value model.
    fn to_value(&self) -> Value;
}

/// A type that can rebuild itself from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse from the self-describing value model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(u64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| Error(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}
impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let n = v
            .as_u64()
            .ok_or_else(|| Error::expected("unsigned integer", "usize"))?;
        usize::try_from(n).map_err(|_| Error(format!("{n} out of range for usize")))
    }
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(i64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::expected("integer", stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| Error(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}
impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let n = v
            .as_i64()
            .ok_or_else(|| Error::expected("integer", "isize"))?;
        isize::try_from(n).map_err(|_| Error(format!("{n} out of range for isize")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64().ok_or_else(|| Error::expected("number", "f32"))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::expected("single-char string", "char")),
        }
    }
}

// ---------------------------------------------------------------------
// Compound impls
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(xs) => xs.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("sequence", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        // Keys render through their value form; strings stay strings,
        // everything else uses its JSON text (stable because BTreeMap
        // iterates in key order).
        Value::Map(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_value() {
                        Value::Str(s) => s,
                        other => other.to_json_string(),
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::expected("map", "BTreeMap")),
        }
    }
}

// A `Value` serializes as itself. This lets checkpoint structs embed an
// opaque, already-structured state blob (e.g. a trait object's mutable
// state captured by the object itself) inside a derived container.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(xs) => {
                        const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                        if xs.len() != LEN {
                            return Err(Error(format!("tuple length {} != {LEN}", xs.len())));
                        }
                        Ok(($($t::from_value(&xs[$n])?,)+))
                    }
                    _ => Err(Error::expected("sequence", "tuple")),
                }
            }
        }
    )*};
}

ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn int_coerces_to_float() {
        // JSON `3` must deserialize into an f64 field.
        assert_eq!(f64::from_value(&Value::UInt(3)).unwrap(), 3.0);
        assert_eq!(f64::from_value(&Value::Int(-3)).unwrap(), -3.0);
    }

    #[test]
    fn option_and_vec_round_trip() {
        let v: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&v.to_value()).unwrap(), None);
        let v = Some(9u32);
        assert_eq!(Option::<u32>::from_value(&v.to_value()).unwrap(), Some(9));
        let xs = vec![(1u32, 2.5f64), (3, 4.5)];
        assert_eq!(Vec::<(u32, f64)>::from_value(&xs.to_value()).unwrap(), xs);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }
}
