//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the stand-in `serde::Serialize` /
//! `serde::Deserialize` traits (see `shims/serde`) for plain structs and
//! enums. The parser is hand-rolled over `proc_macro::TokenTree` — no
//! `syn`/`quote`, since this environment cannot fetch crates. Supported
//! shapes (everything this workspace derives on):
//!
//! * structs with named fields, honoring `#[serde(default)]`;
//! * tuple structs (newtypes serialize transparently, like real serde);
//! * enums with unit, tuple, and struct variants (externally tagged).
//!
//! Generics are rejected with a compile error rather than silently
//! miscompiled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the stand-in `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Dir::Ser)
}

/// Derive the stand-in `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Dir::De)
}

#[derive(Clone, Copy, PartialEq)]
enum Dir {
    Ser,
    De,
}

fn expand(input: TokenStream, dir: Dir) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let code = match dir {
                Dir::Ser => gen_serialize(&item),
                Dir::De => gen_deserialize(&item),
            };
            code.parse().expect("generated impl parses")
        }
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------
// Data model of the parsed item
// ---------------------------------------------------------------------

struct Field {
    name: String,
    /// `#[serde(default)]` present.
    default: bool,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Parser {
    fn new(ts: TokenStream) -> Parser {
        Parser {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Consume leading attributes; return true if any is `#[serde(default)]`.
    fn skip_attrs(&mut self) -> bool {
        let mut has_default = false;
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.bump();
            let Some(TokenTree::Group(g)) = self.bump() else {
                break;
            };
            let body = g.stream().to_string();
            // Normalized token text: `serde(default)` or `serde (default)`.
            let compact: String = body.chars().filter(|c| !c.is_whitespace()).collect();
            if compact.starts_with("serde(") && compact.contains("default") {
                has_default = true;
            }
        }
        has_default
    }

    /// Consume `pub`, `pub(...)` if present.
    fn skip_vis(&mut self) {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == "pub" {
                self.bump();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.bump();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.bump() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    /// Skip tokens until a top-level comma (angle-bracket aware), eating
    /// the comma. Returns false when the stream ended instead.
    fn skip_past_comma(&mut self) -> bool {
        let mut angle: i32 = 0;
        while let Some(t) = self.bump() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => return true,
                    _ => {}
                }
            }
        }
        false
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut p = Parser::new(input);
    p.skip_attrs();
    p.skip_vis();
    let kw = p.expect_ident()?;
    let name = p.expect_ident()?;
    if let Some(TokenTree::Punct(pt)) = p.peek() {
        if pt.as_char() == '<' {
            return Err(format!(
                "serde stand-in derive does not support generics (on `{name}`)"
            ));
        }
    }
    match kw.as_str() {
        "struct" => {
            let shape = match p.bump() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(pt)) if pt.as_char() == ';' => Shape::Unit,
                other => return Err(format!("unsupported struct body: {other:?}")),
            };
            Ok(Item::Struct { name, shape })
        }
        "enum" => {
            let Some(TokenTree::Group(g)) = p.bump() else {
                return Err("expected enum body".into());
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let mut p = Parser::new(body);
    let mut fields = Vec::new();
    while !p.at_end() {
        let default = p.skip_attrs();
        if p.at_end() {
            break;
        }
        p.skip_vis();
        let name = p.expect_ident()?;
        match p.bump() {
            Some(TokenTree::Punct(pt)) if pt.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        fields.push(Field { name, default });
        if !p.skip_past_comma() {
            break;
        }
    }
    Ok(fields)
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut p = Parser::new(body);
    let mut n = 0;
    loop {
        p.skip_attrs();
        if p.at_end() {
            break;
        }
        n += 1;
        if !p.skip_past_comma() {
            break;
        }
        // Trailing comma: nothing after it.
        if p.at_end() {
            break;
        }
    }
    n
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut p = Parser::new(body);
    let mut variants = Vec::new();
    while !p.at_end() {
        p.skip_attrs();
        if p.at_end() {
            break;
        }
        let name = p.expect_ident()?;
        let shape = match p.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                p.bump();
                Shape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                p.bump();
                Shape::Tuple(n)
            }
            _ => Shape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skips any explicit discriminant (`= expr`) along the way.
        if !p.skip_past_comma() {
            break;
        }
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

const VAL: &str = "::serde::value::Value";

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Named(fields) => {
                    let pairs: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from({n:?}), ::serde::Serialize::to_value(&self.{n}))",
                                n = f.name
                            )
                        })
                        .collect();
                    format!("{VAL}::Map(::std::vec![{}])", pairs.join(", "))
                }
                Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("{VAL}::Seq(::std::vec![{}])", items.join(", "))
                }
                Shape::Unit => format!("{VAL}::Null"),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> {VAL} {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vn} => {VAL}::Str(::std::string::String::from({vn:?})),"
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{vn}(f0) => {VAL}::Map(::std::vec![(::std::string::String::from({vn:?}), ::serde::Serialize::to_value(f0))]),"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({b}) => {VAL}::Map(::std::vec![(::std::string::String::from({vn:?}), {VAL}::Seq(::std::vec![{i}]))]),",
                                b = binds.join(", "),
                                i = items.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({n:?}), ::serde::Serialize::to_value({n}))",
                                        n = f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {b} }} => {VAL}::Map(::std::vec![(::std::string::String::from({vn:?}), {VAL}::Map(::std::vec![{p}]))]),",
                                b = binds.join(", "),
                                p = pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> {VAL} {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

/// Decoder expression for one named field out of map binding `m`.
fn named_field_decoder(owner: &str, f: &Field) -> String {
    let missing = if f.default {
        "::std::default::Default::default()".to_string()
    } else {
        format!(
            "return ::std::result::Result::Err(::serde::Error::missing({:?}, {owner:?}))",
            f.name
        )
    };
    format!(
        "{n}: match ::serde::value::get(m, {n:?}) {{\n\
             ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?,\n\
             ::std::option::Option::None => {missing},\n\
         }}",
        n = f.name
    )
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::Struct { name, shape } => match shape {
            Shape::Named(fields) => {
                let decoders: Vec<String> = fields
                    .iter()
                    .map(|f| named_field_decoder(name, f))
                    .collect();
                format!(
                    "let m = v.as_map().ok_or_else(|| ::serde::Error::expected(\"map\", {name:?}))?;\n\
                     ::std::result::Result::Ok({name} {{ {} }})",
                    decoders.join(", ")
                )
            }
            Shape::Tuple(1) => {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
            }
            Shape::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&xs[{i}])?"))
                    .collect();
                format!(
                    "let xs = v.as_seq().ok_or_else(|| ::serde::Error::expected(\"sequence\", {name:?}))?;\n\
                     if xs.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::expected(\"{n}-tuple\", {name:?})); }}\n\
                     ::std::result::Result::Ok({name}({}))",
                    items.join(", ")
                )
            }
            Shape::Unit => format!("::std::result::Result::Ok({name})"),
        },
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| {
                    format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => None,
                        Shape::Tuple(1) => Some(format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        Shape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&xs[{i}])?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                     let xs = inner.as_seq().ok_or_else(|| ::serde::Error::expected(\"sequence\", {vn:?}))?;\n\
                                     if xs.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::expected(\"{n}-tuple\", {vn:?})); }}\n\
                                     ::std::result::Result::Ok({name}::{vn}({}))\n\
                                 }}",
                                items.join(", ")
                            ))
                        }
                        Shape::Named(fields) => {
                            let owner = format!("{name}::{vn}");
                            let decoders: Vec<String> = fields
                                .iter()
                                .map(|f| named_field_decoder(&owner, f))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                     let m = inner.as_map().ok_or_else(|| ::serde::Error::expected(\"map\", {vn:?}))?;\n\
                                     ::std::result::Result::Ok({name}::{vn} {{ {} }})\n\
                                 }}",
                                decoders.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     {VAL}::Str(s) => match s.as_str() {{\n\
                         {units}\n\
                         other => ::std::result::Result::Err(::serde::Error(::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                     }},\n\
                     {VAL}::Map(m) if m.len() == 1 => {{\n\
                         let (tag, inner) = &m[0];\n\
                         match tag.as_str() {{\n\
                             {datas}\n\
                             other => ::std::result::Result::Err(::serde::Error(::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                         }}\n\
                     }}\n\
                     _ => ::std::result::Result::Err(::serde::Error::expected(\"string or 1-key map\", {name:?})),\n\
                 }}",
                units = unit_arms.join("\n"),
                datas = data_arms.join("\n"),
            )
        }
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             #[allow(unused_variables)]\n\
             fn from_value(v: &{VAL}) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
