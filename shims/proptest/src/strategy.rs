//! Value-generation strategies: integer/float ranges, tuples, string
//! patterns, and combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Something that can produce random values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map values through `f`, resampling whenever it returns `None`.
    /// `reason` labels the filter in the panic raised if the strategy
    /// rejects essentially everything.
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            reason,
            f,
        }
    }

    /// Map values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map rejected 10000 consecutive inputs: {}",
            self.reason
        );
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy behind a reference works like the strategy itself.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Bias ~1/8 of draws to the boundaries; properties fail
                // there far more often than in the bulk.
                match rng.below(16) {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => self.start + rng.below((self.end - self.start) as u64) as $t,
                }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                match rng.below(16) {
                    0 => lo,
                    1 => hi,
                    _ => {
                        let span = (hi - lo) as u64;
                        if span == u64::MAX {
                            rng.next_u64() as $t
                        } else {
                            lo + rng.below(span + 1) as $t
                        }
                    }
                }
            }
        }
    )*};
}

uint_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                match rng.below(16) {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => self.start.wrapping_add(rng.below(span) as $t),
                }
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                let v = self.start + u * (self.end - self.start);
                // Rounding can land exactly on `end`; stay half-open.
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// String literals act as (a small subset of) regex strategies:
/// sequences of literal chars or classes like `[A-Z]`/`[a-z0-9_]`, each
/// optionally quantified with `{n}`, `{m,n}`, `+`, `*`, or `?`.
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (chars, min, max) in &atoms {
            let n = *min + rng.below((*max - *min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(chars[rng.below(chars.len() as u64) as usize]);
            }
        }
        out
    }
}

/// Parse into (alphabet, min repeats, max repeats) atoms.
fn parse_pattern(pat: &str) -> Vec<(Vec<char>, usize, usize)> {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    let mut atoms = Vec::new();
    while i < chars.len() {
        let alphabet = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pat:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '\\' => {
                i += 1;
                let c = chars[i];
                i += 1;
                match c {
                    'd' => ('0'..='9').collect(),
                    'w' => ('a'..='z').chain('A'..='Z').chain('0'..='9').collect(),
                    other => vec![other],
                }
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        assert!(!alphabet.is_empty(), "empty class in pattern {pat:?}");
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed quantifier in {pat:?}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("quantifier min"),
                            n.trim().parse().expect("quantifier max"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("quantifier count");
                            (n, n)
                        }
                    }
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad quantifier in pattern {pat:?}");
        atoms.push((alphabet, min, max));
    }
    atoms
}

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_parser_handles_classes_and_quantifiers() {
        let atoms = parse_pattern("[A-Z]{2,8}");
        assert_eq!(atoms.len(), 1);
        assert_eq!(atoms[0].0.len(), 26);
        assert_eq!((atoms[0].1, atoms[0].2), (2, 8));

        let atoms = parse_pattern("ab[0-9]+");
        assert_eq!(atoms.len(), 3);
        assert_eq!(atoms[2].0.len(), 10);
    }

    #[test]
    fn float_range_stays_half_open() {
        let mut rng = TestRng::from_label("float");
        let s = -1.0f64..1.0;
        for _ in 0..1000 {
            let v = s.generate(&mut rng);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn boundary_bias_hits_both_ends() {
        let mut rng = TestRng::from_label("bounds");
        let s = 5u32..8;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen, [5u32, 6, 7].into_iter().collect());
    }
}
