//! Offline stand-in for `proptest`: generates random cases from the same
//! strategy expressions (`1u32..260`, `prop::collection::vec`,
//! `"[A-Z]{2,8}"`, tuples, `prop_filter_map`) and runs each property over
//! a deterministic per-test seed. No shrinking — a failing case reports
//! its case index and the runner seed instead of a minimized input.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// What `use proptest::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror so `prop::collection::vec(..)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__pt_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __pt_rng);)+
                    #[allow(unreachable_code, clippy::diverging_sub_expression)]
                    let __pt_out: ::std::result::Result<(), $crate::test_runner::TestCaseError> = {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    __pt_out
                });
            }
        )+
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args..)`: fail the
/// current case without panicking mid-generation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion with value context in the failure message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Inequality assertion with value context in the failure message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in 0u64..=5, z in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 5);
            prop_assert!((-2.0..2.0).contains(&z));
        }

        #[test]
        fn vec_and_any(v in prop::collection::vec(any::<bool>(), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
        }

        #[test]
        fn regex_strings_match_shape(s in "[A-Z]{2,8}") {
            prop_assert!(s.len() >= 2 && s.len() <= 8, "bad len {:?}", s);
            prop_assert!(s.chars().all(|c| c.is_ascii_uppercase()));
        }

        #[test]
        fn filter_map_applies(n in (1u32..100).prop_filter_map("even only", |n| {
            if n % 2 == 0 { Some(n) } else { None }
        })) {
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n, 1);
        }
    }
}
