//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Vectors of `element` values with lengths in `size` (half-open).
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_stay_in_range() {
        let s = vec(0u32..10, 2..5);
        let mut rng = TestRng::from_label("vec");
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
