//! The case runner and its deterministic RNG.

/// A property failure (as opposed to a panic inside the property body).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic generator seeded from the test name, so every run of a
/// given test explores the same cases (splitmix64 core).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a label via FNV-1a.
    pub fn from_label(label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)` by rejection; `bound` must be > 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform f64 in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// How many cases each property runs (`PROPTEST_CASES` overrides).
fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Drive one property through its cases; panic (i.e. fail the enclosing
/// `#[test]`) on the first case that returns `Err`.
pub fn run<F>(name: &str, mut property: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let cases = case_count();
    let mut rng = TestRng::from_label(name);
    for case in 0..cases {
        if let Err(e) = property(&mut rng) {
            panic!("property {name} failed at case {case}/{cases}: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_label() {
        let mut a = TestRng::from_label("x");
        let mut b = TestRng::from_label("x");
        let mut c = TestRng::from_label("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::from_label("bound");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        run("always_fails", |_| Err(TestCaseError::fail("nope")));
    }
}
