//! `any::<T>()` support for types with a canonical full-domain strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a default whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw a value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over `T`'s full domain.
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arb_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_yields_both_values() {
        let mut rng = TestRng::from_label("bools");
        let s = any::<bool>();
        let mut seen = [false, false];
        for _ in 0..64 {
            seen[usize::from(s.generate(&mut rng))] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
