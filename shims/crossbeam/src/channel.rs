//! An unbounded MPMC channel over a mutex/condvar queue, with the
//! crossbeam semantics the executor relies on: receivers are cloneable,
//! and `recv` returns `Err` once the queue is empty and all senders are
//! dropped.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
}

/// The sending half (cloneable).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half (cloneable — workers share one queue).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error: all receivers dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error: channel empty and all senders dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error for non-blocking receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now.
    Empty,
    /// Empty and no sender remains.
    Disconnected,
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        cv: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueue a value; fails only when every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.state.lock().unwrap();
        if st.receivers == 0 {
            return Err(SendError(value));
        }
        st.queue.push_back(value);
        drop(st);
        self.shared.cv.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap();
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            self.shared.cv.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeue, blocking until a value or sender-side disconnect.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if let Some(v) = st.queue.pop_front() {
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.shared.cv.wait(st).unwrap();
        }
    }

    /// Dequeue without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.state.lock().unwrap();
        if let Some(v) = st.queue.pop_front() {
            Ok(v)
        } else if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocking iterator until disconnect (used by result collectors).
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(move || self.recv().ok())
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.state.lock().unwrap().receivers -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_single_consumer() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_to_no_receivers_fails() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }

    #[test]
    fn cloned_receivers_split_the_stream() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut got = Vec::new();
        got.extend(rx1.iter());
        got.extend(rx2.iter());
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }
}
