//! Scoped threads with the crossbeam 0.8 calling convention: the scope
//! closure and every spawned closure receive `&Scope`, and `scope`
//! returns `Err` with the panic payload if any unjoined child panicked.

/// Result of joining a thread (the panic payload on the Err side).
pub type Result<T> = std::thread::Result<T>;

/// A scope handle; spawned threads may borrow from the enclosing stack
/// frame (`'env`).
pub struct Scope<'scope, 'env> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Run `f` with a scope; join all spawned threads before returning.
pub fn scope<'env, F, R>(f: F) -> Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure gets the scope back so it can
    /// spawn nested work, like crossbeam's.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Handle to a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Wait for the thread; `Err` carries the panic payload.
    pub fn join(self) -> Result<T> {
        self.inner.join()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn borrows_from_environment() {
        let data = [1u32, 2, 3];
        let sum = std::sync::Mutex::new(0u32);
        scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    *sum.lock().unwrap() += chunk.iter().sum::<u32>();
                });
            }
        })
        .unwrap();
        assert_eq!(sum.into_inner().unwrap(), 6);
    }

    #[test]
    fn child_panic_surfaces_as_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn join_returns_value() {
        let r = scope(|s| {
            let h = s.spawn(|_| 21u32 * 2);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }
}
