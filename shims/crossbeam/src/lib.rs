//! Offline stand-in for `crossbeam`: the pieces `pa-campaign`'s executor
//! uses — [`scope`] for borrowing worker threads and an MPMC
//! [`channel`] — implemented over `std::thread::scope` and a
//! mutex/condvar queue. Semantics match the crossbeam 0.8 APIs the code
//! is written against: cloneable senders *and* receivers, with `recv`
//! failing once the queue is empty and every sender is gone.

pub mod channel;
pub mod thread;

pub use thread::scope;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_workers_drain_a_shared_queue() {
        let (tx, rx) = channel::unbounded();
        for i in 0..100u32 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total = std::sync::atomic::AtomicU32::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    while let Ok(v) = rx.recv() {
                        total.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(total.into_inner(), (0..100).sum());
    }
}
