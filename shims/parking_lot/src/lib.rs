//! Offline stand-in for `parking_lot`: `Mutex`/`RwLock` with the
//! poison-free API, delegating to `std::sync`. Declared in the workspace
//! manifest for future use; nothing depends on it yet.

use std::sync::{Mutex as StdMutex, MutexGuard, RwLock as StdRwLock};
use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` does not return a poison Result.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquire, ignoring poison (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_data() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
