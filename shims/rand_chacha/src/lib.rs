//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream
//! generator behind the `ChaCha8Rng` name. Stream values differ from the
//! real crate's (seeding layout is not bit-compatible), which is fine —
//! the workspace only requires determinism and statistical quality, both
//! of which ChaCha provides by construction.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, counter-mode keystream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Input block: constants, 256-bit key, 64-bit counter, 64-bit nonce.
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word of `buf` (16 = exhausted).
    idx: usize,
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed to a 256-bit key with splitmix64, like
        // rand's generic seed_from_u64 path.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865; // "expa"
        state[1] = 0x3320_646e; // "nd 3"
        state[2] = 0x7962_2d32; // "2-by"
        state[3] = 0x6b20_6574; // "te k"
        for i in 0..4 {
            let k = next();
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl ChaCha8Rng {
    /// Export the full generator state — input block, current keystream
    /// block, and the next-unread-word index — so a deterministic
    /// simulation can checkpoint a stream mid-flight and resume it at the
    /// exact draw it stopped at.
    pub fn dump_state(&self) -> ([u32; 16], [u32; 16], usize) {
        (self.state, self.buf, self.idx)
    }

    /// Rebuild a generator from state captured by
    /// [`ChaCha8Rng::dump_state`]. `idx` is clamped to 16 (= exhausted
    /// block, refill on next draw), which is the only out-of-range value
    /// a well-formed dump can contain.
    pub fn from_state(state: [u32; 16], buf: [u32; 16], idx: usize) -> Self {
        ChaCha8Rng {
            state,
            buf,
            idx: idx.min(16),
        }
    }

    fn refill(&mut self) {
        let mut x = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (i, b) in self.buf.iter_mut().enumerate() {
            *b = x[i].wrapping_add(self.state[i]);
        }
        // 64-bit block counter in words 12..14.
        let ctr = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = ctr as u32;
        self.state[13] = (ctr >> 32) as u32;
        self.idx = 0;
    }
}

#[inline]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_look_uniform() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
