//! Offline stand-in for `criterion`: same macro/entry-point surface
//! (`criterion_group!`, `criterion_main!`, `bench_function`,
//! `benchmark_group`, `iter`, `iter_batched`), measuring with plain
//! wall-clock timing. In `--test` mode (what `cargo test` passes to a
//! `harness = false` bench) each routine runs exactly once.

use std::time::Instant;

/// How batched inputs are grouped; only the label matters here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup values.
    SmallInput,
    /// Large per-iteration setup values.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Prevent the optimizer from discarding a value (re-export of std's).
pub use std::hint::black_box;

/// Benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Measure one routine under `name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            test_mode: self.test_mode,
            ns_per_iter: None,
        };
        f(&mut b);
        report(name, &b);
        self
    }

    /// Open a named group; benches inside print as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling here is adaptive.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measure one routine under `group/name`.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// End the group (criterion requires this; nothing to flush here).
    pub fn finish(self) {}
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    test_mode: bool,
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Time `routine` over an adaptively chosen iteration count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // One timed probe sizes the real measurement loop.
        let probe = Instant::now();
        black_box(routine());
        let probe_ns = probe.elapsed().as_nanos().max(1) as f64;
        let iters = iterations_for(probe_ns);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.ns_per_iter = Some(start.elapsed().as_nanos() as f64 / iters as f64);
    }

    /// Time `routine` on fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        let input = setup();
        let probe = Instant::now();
        black_box(routine(input));
        let probe_ns = probe.elapsed().as_nanos().max(1) as f64;
        let iters = iterations_for(probe_ns);
        let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.ns_per_iter = Some(start.elapsed().as_nanos() as f64 / iters as f64);
    }
}

/// Aim for ~50ms of measurement, capped to keep whole suites fast.
fn iterations_for(probe_ns: f64) -> u64 {
    ((50_000_000.0 / probe_ns) as u64).clamp(1, 10_000)
}

fn report(name: &str, b: &Bencher) {
    match b.ns_per_iter {
        Some(ns) if ns >= 1_000_000.0 => {
            println!("{name:<45} {:>10.3} ms/iter", ns / 1_000_000.0)
        }
        Some(ns) if ns >= 1_000.0 => println!("{name:<45} {:>10.3} us/iter", ns / 1_000.0),
        Some(ns) => println!("{name:<45} {:>10.1} ns/iter", ns),
        None => println!("{name:<45}        ran (test mode)"),
    }
}

/// Bundle benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut n = 0u32;
        let mut c = Criterion { test_mode: true };
        c.bench_function("t", |b| b.iter(|| n += 1));
        assert!(n >= 1);
    }

    #[test]
    fn groups_compose_names_and_finish() {
        let mut c = Criterion { test_mode: true };
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        let mut ran = false;
        g.bench_function("inner", |b| {
            b.iter_batched(|| 3u32, |x| x * 2, BatchSize::SmallInput);
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn iterations_scale_inversely_with_cost() {
        assert_eq!(iterations_for(50_000_000.0), 1);
        assert_eq!(iterations_for(5_000.0), 10_000);
    }
}
