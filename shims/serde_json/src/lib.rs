//! Offline stand-in for `serde_json`.
//!
//! Serialization renders the `serde` stand-in's canonical [`Value`] tree;
//! deserialization parses JSON text back into that tree and decodes it.
//! Output layout matches real `serde_json` (compact and 2-space pretty
//! modes, `.0` suffix on whole floats) so regenerated artifacts diff
//! cleanly.

pub use serde::value::Value;
pub use serde::Error;

use serde::{Deserialize, Serialize};

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_string())
}

/// Serialize to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_string_pretty())
}

/// Deserialize from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse(s)?;
    T::from_value(&v)
}

/// Parse JSON text into the value model.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = JsonParser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error(format!("expected `{lit}` at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.eat_lit("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_lit("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_lit("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut xs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(xs));
                }
                loop {
                    self.skip_ws();
                    xs.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(xs));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut m = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(m));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    let v = self.value()?;
                    m.push((k, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(m));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not produced by the
                            // serializer; reject rather than mis-decode.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("unsupported \\u escape".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one UTF-8 scalar.
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "42", "-17", "3.25", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(v.to_json_string(), text, "round-trip of {text}");
        }
    }

    #[test]
    fn nested_round_trip() {
        let text = r#"{"a":[1,2.5,{"b":null}],"c":"x\ny"}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.to_json_string(), text);
    }

    #[test]
    fn whole_float_round_trips_as_float() {
        let v = parse("3.0").unwrap();
        assert_eq!(v, Value::Float(3.0));
        assert_eq!(v.to_json_string(), "3.0");
    }

    #[test]
    fn typed_round_trip() {
        let xs: Vec<(u32, f64)> = vec![(1, 0.5), (2, 1.0)];
        let text = to_string(&xs).unwrap();
        let back: Vec<(u32, f64)> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("1 2").is_err());
        assert!(parse("{").is_err());
    }

    #[test]
    fn pretty_matches_expected_layout() {
        let xs = vec![1u32, 2];
        assert_eq!(to_string_pretty(&xs).unwrap(), "[\n  1,\n  2\n]");
    }
}
