//! Administrator tuning: the /etc/poe.priority interface and the duty
//! cycle latitude §4 describes ("it is possible to give the tasks
//! priority ... for a very long time. This can starve system daemons and
//! make the node unusable").
//!
//! Run with: `cargo run --release -p pa-examples --bin tuning_sweep`

use pa_campaign::{Cache, ExecutorConfig};
use pa_core::{schedtune, schedtune_render, AdminTable, PriorityGrant, SchedOptions};
use pa_workloads::duty_cycle_sweep;

fn main() {
    pa_examples::section("schedtune (kernel options, §3.2.1)");
    let proto = schedtune(
        SchedOptions::vanilla(),
        "bigtick=25 tickalign=simultaneous preempt=rtplus daemonq=global",
    )
    .expect("valid schedtune settings");
    println!("vanilla  : {}", schedtune_render(&SchedOptions::vanilla()));
    println!("prototype: {}", schedtune_render(&proto));
    assert_eq!(proto, SchedOptions::prototype());

    pa_examples::section("/etc/poe.priority");
    let table = AdminTable::parse(
        "# class:uid:favored:unfavored:period_s:duty_pct\n\
         BENCH:1001:30:100:5:90\n\
         PROD:1002:41:100:10:95\n",
    )
    .expect("valid priority file");
    print!("{}", table.render());

    pa_examples::section("MP_PRIORITY request flow");
    match table.request("BENCH", 1001) {
        PriorityGrant::Granted(p) => println!(
            "uid 1001, MP_PRIORITY=BENCH -> granted favored {:?}, unfavored {:?}, {} @ {:.0}%",
            p.favored,
            p.unfavored,
            p.period,
            p.duty * 100.0
        ),
        PriorityGrant::Refused { attention } => println!("{attention}"),
    }
    match table.request("BENCH", 4242) {
        PriorityGrant::Granted(_) => unreachable!("uid 4242 is not authorized"),
        PriorityGrant::Refused { attention } => println!("uid 4242: {attention}"),
    }

    pa_examples::section("favored-window duty cycle sweep (4 nodes x 16)");
    // The sweep runs through the campaign executor: each duty setting is a
    // content-keyed point, so reruns hit `results/cache/` and `--jobs`-style
    // parallelism changes nothing about the numbers.
    let jobs = std::thread::available_parallelism().map_or(1, |n| n.get().min(4));
    let mut exec = ExecutorConfig::serial("tuning-sweep").with_jobs(jobs);
    match Cache::at(Cache::default_dir()) {
        Ok(cache) => exec = exec.with_cache(cache),
        Err(e) => eprintln!("(no cache: {e})"),
    }
    println!("(campaign: {jobs} workers, cache at results/cache)");
    println!("{:>6} {:>12}", "duty", "Allreduce µs");
    let sweep = duty_cycle_sweep(4, &[0.0, 0.2, 0.4, 0.6, 0.8, 1.0], true, &exec)
        .expect("fixed-work sweep points must complete");
    for (duty, us) in sweep {
        println!("{duty:>6.2} {us:>12.1}");
    }
    println!("(higher duty favors the job; §4 warns against starving the daemons entirely —");
    println!(" see the ale3d_cosched example for what that does to I/O)");
}
