//! The ALE3D I/O story (§5.3), end to end.
//!
//! Runs the ALE3D proxy (BSP timesteps, halo exchange, reductions, GPFS
//! I/O) in four configurations and shows why the first co-scheduler tests
//! "were very disappointing" — and how I/O-aware priorities fix it.
//!
//! Run with: `cargo run --release -p pa-examples --bin ale3d_cosched`

use pa_simkit::SimDur;
use pa_workloads::{run_ale3d, Ale3dSpec, AleMode};

fn main() {
    pa_examples::section("ALE3D proxy: 2 nodes x 16 ranks, GPFS-routed I/O");
    let spec = Ale3dSpec {
        timesteps: 10,
        compute_per_step: SimDur::from_millis(8),
        initial_read_bytes: 2 << 20,
        restart_bytes: 4 << 20,
        plot_every: 3, // a rotating rank writes a plot file mid-run
        plot_bytes: 2 << 20,
        ..Ale3dSpec::default()
    };
    for mode in [
        AleMode::Vanilla,
        AleMode::NaiveCosched,
        AleMode::NaiveWithDetach,
        AleMode::IoAware,
    ] {
        let row = run_ale3d(2, spec, mode, 42);
        println!(
            "{:<52} {:>9.3} s{}",
            row.label,
            row.wall_s,
            if row.completed {
                ""
            } else {
                "  (hit horizon!)"
            }
        );
    }
    pa_examples::section("what happened");
    println!("naive favored=30 outranks mmfsd=40: a rank blocked on a plot write waits");
    println!("for the unfavored window while every other rank spins in the collective —");
    println!("the whole machine stalls on one small file. favored=41 lets mmfsd preempt");
    println!("briefly (a tolerable interference), which is the paper's recommended fix.");
}
