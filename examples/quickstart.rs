//! Quickstart: simulate the paper's headline experiment at desk scale.
//!
//! Builds a 4-node × 16-way cluster, runs a loop of MPI_Allreduce calls
//! under (a) a stock AIX-like kernel and (b) the parallel-aware prototype
//! kernel + co-scheduler, and prints the comparison.
//!
//! Run with: `cargo run --release -p pa-examples --bin quickstart`

use pa_core::{CoschedSetup, Experiment, SchedOptions};
use pa_mpi::{MpiOp, OpList, RankWorkload};
use pa_noise::NoiseProfile;

fn run(label: &str, prototype: bool) -> f64 {
    // 300 Allreduces of 8 bytes per rank — the aggregate_trace shape.
    let mut make = |_rank: u32| -> Box<dyn RankWorkload> {
        Box::new(OpList::new(vec![MpiOp::Allreduce { bytes: 8 }; 300]))
    };

    let mut experiment = Experiment::new(4, 16) // 4 nodes × 16 tasks
        .with_noise(NoiseProfile::production().without_cron())
        .with_sim_threads(2) // shard the 4 node kernels over 2 engine
        // threads; results are bit-identical at any thread count
        .with_seed(42);
    if prototype {
        experiment = experiment
            .with_kernel(SchedOptions::prototype()) // big ticks, aligned ticks,
            // improved RT preemption, global daemon queue (§3)
            .with_cosched(CoschedSetup::default()); // favored 30 / unfavored 100,
                                                    // 5 s window, 90% duty (§4)
    }
    let out = experiment.run(&mut make);
    assert!(out.completed, "the job should finish");
    let mean = out.mean_allreduce_us();
    println!(
        "{label:<28} mean Allreduce {mean:8.1} µs   (job wall time {},  {} sim events)",
        out.wall, out.events
    );
    mean
}

fn main() {
    pa_examples::section("PACE quickstart: 64 ranks, production noise");
    let vanilla = run("vanilla AIX-like kernel", false);
    let proto = run("prototype + co-scheduler", true);
    pa_examples::section("result");
    println!(
        "speedup on synchronizing collectives: {:.2}x (grows with scale; >3x at 944 procs)",
        vanilla / proto
    );
}
