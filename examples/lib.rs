//! Shared helpers for the PACE examples.
//!
//! Each example binary is a self-contained walkthrough of one part of the
//! public API; this crate only hosts tiny formatting utilities so the
//! examples stay focused.

/// Print a section header.
pub fn section(title: &str) {
    println!();
    println!("── {title} ──");
}
