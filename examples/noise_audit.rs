//! Audit the simulated node's background load against the paper's §2
//! measurement: "typical operating system and daemon activity consumes
//! 0.2% to 1.1% of each CPU".
//!
//! Run with: `cargo run --release -p pa-examples --bin noise_audit`
//!
//! Pass a path (e.g. `-- audit_trace.json`) to also record a span
//! timeline of the same noisy 16-way node over a short window — per-CPU
//! tracks of daemon/cron/soaker spans with tick instants, viewable in
//! Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.

use pa_kernel::SchedOptions;
use pa_noise::NoiseProfile;
use pa_simkit::SimDur;
use pa_workloads::{audit_node, audit_node_timeline};

fn main() {
    pa_examples::section("background-load audit: 16-way node, 120 s window");
    let result = audit_node(
        &NoiseProfile::production(),
        SchedOptions::vanilla(),
        16,
        SimDur::from_secs(120),
        42,
    );
    println!(
        "{:<16} {:<10} {:>12} {:>10}",
        "thread", "class", "cpu time", "% of 1 CPU"
    );
    for row in &result.rows {
        println!(
            "{:<16} {:<10} {:>12} {:>9.3}%",
            row.name,
            format!("{:?}", row.class),
            row.cpu_time.to_string(),
            100.0 * row.one_cpu_share
        );
    }
    pa_examples::section("totals");
    println!(
        "node total {:.2}% of one CPU  ->  {:.3}% per CPU on the 16-way node",
        100.0 * result.total_one_cpu_share,
        100.0 * result.per_cpu_share
    );
    println!("paper band: 0.2%–1.1% per CPU on production SP nodes");

    if let Some(path) = std::env::args().nth(1) {
        pa_examples::section("span timeline: 16-way node, 3 s window");
        // Compress the cron phase so its ~600 ms firing lands inside the
        // short traced window (the audit above uses the real 15 min
        // period; the compression is the same one Figure 4 documents).
        let mut noise = NoiseProfile::production();
        if let Some(cron) = &mut noise.cron {
            cron.phase = SimDur::from_millis(500);
        }
        let (_, timeline) = audit_node_timeline(
            &noise,
            SchedOptions::vanilla(),
            16,
            SimDur::from_secs(3),
            42,
        );
        std::fs::write(&path, timeline.to_chrome_trace()).expect("write timeline");
        println!(
            "{} span events written to {path} — open in https://ui.perfetto.dev",
            timeline.len()
        );
    }
}
